// Tests for the parameter transforms and the BFGS minimizer.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "opt/bfgs.hpp"
#include "opt/nelder_mead.hpp"
#include "opt/transforms.hpp"

namespace slim::opt {
namespace {

// ---------- scalar transforms ----------

TEST(Transforms, IdentityRoundTrip) {
  const auto t = Transform::identity();
  EXPECT_DOUBLE_EQ(t.toExternal(3.5), 3.5);
  EXPECT_DOUBLE_EQ(t.toInternal(-2.0), -2.0);
}

TEST(Transforms, LogAboveRoundTrip) {
  const auto t = Transform::logAbove(1.0);
  for (double x : {1.0001, 1.5, 2.0, 10.0, 1e4}) {
    EXPECT_NEAR(t.toExternal(t.toInternal(x)), x, 1e-9 * x);
    EXPECT_GT(t.toExternal(t.toInternal(x)), 1.0);
  }
}

TEST(Transforms, LogAboveMapsAllOfR) {
  const auto t = Transform::logAbove(0.0);
  EXPECT_GT(t.toExternal(-100.0), 0.0);
  EXPECT_TRUE(std::isfinite(t.toExternal(50.0)));
}

TEST(Transforms, LogisticRoundTrip) {
  const auto t = Transform::logistic(0.0, 1.0);
  for (double x : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_NEAR(t.toExternal(t.toInternal(x)), x, 1e-12);
  }
}

TEST(Transforms, LogisticStaysInRange) {
  const auto t = Transform::logistic(2.0, 5.0);
  for (double u : {-100.0, -1.0, 0.0, 1.0, 100.0}) {
    const double x = t.toExternal(u);
    EXPECT_GT(x, 2.0 - 1e-12);
    EXPECT_LT(x, 5.0 + 1e-12);
  }
}

TEST(Transforms, LogisticBoundaryInputClamped) {
  const auto t = Transform::logistic(0.0, 1.0);
  EXPECT_TRUE(std::isfinite(t.toInternal(0.0)));
  EXPECT_TRUE(std::isfinite(t.toInternal(1.0)));
}

// A parameter sitting exactly on a box bound — p1 = 0 from a degenerate
// start, a branch length at the clamp in a checkpoint — must map to a
// finite internal coordinate whose round trip lands strictly inside the
// open domain, or a resumed BFGS step starts from ±inf/NaN and every later
// iterate is poisoned.  Same for values knocked *past* a bound and for
// non-finite input (std::max/std::clamp propagate NaN).
TEST(Transforms, InverseClampsIntoOpenIntervalAtBothBounds) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();

  // PAML's branch-length box (0, 50].
  const auto branch = Transform::logistic(0.0, 50.0);
  for (double x : {0.0, -1e-9, -5.0, 50.0, 50.0 + 1e-9, 1e9, inf, -inf, nan}) {
    const double u = branch.toInternal(x);
    EXPECT_TRUE(std::isfinite(u)) << "x=" << x;
    const double back = branch.toExternal(u);
    EXPECT_GT(back, 0.0) << "x=" << x;
    EXPECT_LT(back, 50.0) << "x=" << x;
    EXPECT_TRUE(std::isfinite(branch.derivative(u))) << "x=" << x;
  }

  // kappa > 0 and omega2 > 1 (log transforms); inf would otherwise map to
  // an inf internal coordinate.
  for (const auto t : {Transform::logAbove(0.0), Transform::logAbove(1.0)}) {
    for (double offset : {0.0, -1.0, inf, -inf, nan}) {
      const double u = t.toInternal(offset);
      EXPECT_TRUE(std::isfinite(u)) << "offset=" << offset;
      EXPECT_TRUE(std::isfinite(t.toExternal(u))) << "offset=" << offset;
    }
  }
}

TEST(Simplex2, InverseClampsDegenerateAndNonFiniteInput) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // On the simplex boundary (p1 = 0, p0 + p1 = 1) and beyond it.
  for (auto [p0, p1] : {std::pair{0.9, 0.0}, {0.0, 0.9}, {0.0, 0.0},
                        {0.5, 0.5}, {1.0, 0.0}, {1.5, -0.5}, {inf, 0.3},
                        {nan, nan}}) {
    const auto [u, v] = simplex2ToInternal(p0, p1);
    EXPECT_TRUE(std::isfinite(u)) << p0 << "," << p1;
    EXPECT_TRUE(std::isfinite(v)) << p0 << "," << p1;
    const auto [q0, q1] = simplex2ToExternal(u, v);
    EXPECT_GT(q0, 0.0);
    EXPECT_GT(q1, 0.0);
    EXPECT_LT(q0 + q1, 1.0);
  }
  // Well-inside values still round-trip tightly after the audit.
  const auto [u, v] = simplex2ToInternal(0.45, 0.45);
  const auto [q0, q1] = simplex2ToExternal(u, v);
  EXPECT_NEAR(q0, 0.45, 1e-12);
  EXPECT_NEAR(q1, 0.45, 1e-12);
}

// ---------- simplex transform ----------

TEST(Simplex2, RoundTrip) {
  for (auto [p0, p1] : {std::pair{0.5, 0.3}, {0.1, 0.8}, {0.85, 0.1},
                        {0.333, 0.333}}) {
    const auto [u, v] = simplex2ToInternal(p0, p1);
    const auto [q0, q1] = simplex2ToExternal(u, v);
    EXPECT_NEAR(q0, p0, 1e-10);
    EXPECT_NEAR(q1, p1, 1e-10);
  }
}

TEST(Simplex2, AlwaysInsideSimplex) {
  for (double u : {-50.0, -1.0, 0.0, 3.0, 50.0})
    for (double v : {-50.0, 0.0, 50.0}) {
      const auto [p0, p1] = simplex2ToExternal(u, v);
      EXPECT_GT(p0, 0.0);
      EXPECT_GT(p1, 0.0);
      EXPECT_LT(p0 + p1, 1.0 + 1e-15);
    }
}

TEST(Simplex2, OverflowSafeForExtremeInputs) {
  const auto [p0, p1] = simplex2ToExternal(800.0, -800.0);
  EXPECT_TRUE(std::isfinite(p0));
  EXPECT_NEAR(p0, 1.0, 1e-10);
  EXPECT_NEAR(p1, 0.0, 1e-10);
}

// ---------- finite-difference gradients ----------

TEST(FdGradient, MatchesAnalyticOnQuadratic) {
  const Objective f = [](std::span<const double> x) {
    return 3.0 * x[0] * x[0] + 2.0 * x[0] * x[1] + x[1] * x[1];
  };
  const std::vector<double> x{1.0, -2.0};
  std::vector<double> g(2);
  long evals = 0;
  fdGradient(f, x, f(x), 1e-7, /*central=*/false, g, evals);
  EXPECT_NEAR(g[0], 6.0 * x[0] + 2.0 * x[1], 1e-5);
  EXPECT_NEAR(g[1], 2.0 * x[0] + 2.0 * x[1], 1e-5);
  EXPECT_EQ(evals, 2);
}

TEST(FdGradient, CentralIsMoreAccurate) {
  const Objective f = [](std::span<const double> x) {
    return std::sin(x[0]);
  };
  const std::vector<double> x{1.3};
  std::vector<double> gf(1), gc(1);
  long evals = 0;
  fdGradient(f, x, f(x), 1e-6, false, gf, evals);
  fdGradient(f, x, f(x), 1e-6, true, gc, evals);
  const double exact = std::cos(1.3);
  EXPECT_LT(std::fabs(gc[0] - exact), std::fabs(gf[0] - exact) + 1e-12);
  EXPECT_EQ(evals, 1 + 2);
}

// ---------- BFGS ----------

TEST(Bfgs, SolvesConvexQuadratic) {
  const Objective f = [](std::span<const double> x) {
    double s = 0;
    for (std::size_t i = 0; i < x.size(); ++i)
      s += (i + 1.0) * (x[i] - 1.0) * (x[i] - 1.0);
    return s;
  };
  const std::vector<double> x0{5.0, -3.0, 0.0, 2.0};
  const auto r = minimizeBfgs(f, x0);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.value, 1e-10);
  for (double xi : r.x) EXPECT_NEAR(xi, 1.0, 1e-4);
}

TEST(Bfgs, SolvesRosenbrock) {
  const Objective f = [](std::span<const double> x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  BfgsOptions opts;
  opts.maxIterations = 2000;
  opts.centralDifferences = true;
  const auto r = minimizeBfgs(f, std::vector<double>{-1.2, 1.0}, opts);
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(Bfgs, ConcurrentDriversMatchSerial) {
  // The reentrancy contract core::TaskScheduler leans on: independent
  // drivers running in parallel (each with its own objective state) land on
  // exactly the serial trajectory.
  const auto makeObjective = [](double target) {
    return Objective([target](std::span<const double> x) {
      const double a = target - x[0];
      const double b = x[1] - x[0] * x[0];
      return a * a + 100.0 * b * b;
    });
  };
  BfgsOptions opts;
  opts.maxIterations = 200;

  constexpr int kDrivers = 8;
  std::vector<BfgsResult> serial(kDrivers), parallel(kDrivers);
  for (int d = 0; d < kDrivers; ++d)
    serial[d] =
        minimizeBfgs(makeObjective(1.0 + d), std::vector<double>{-1.2, 1.0}, opts);

  std::vector<std::thread> threads;
  for (int d = 0; d < kDrivers; ++d)
    threads.emplace_back([&, d] {
      parallel[d] = minimizeBfgs(makeObjective(1.0 + d),
                                 std::vector<double>{-1.2, 1.0}, opts);
    });
  for (auto& t : threads) t.join();

  for (int d = 0; d < kDrivers; ++d) {
    EXPECT_EQ(parallel[d].value, serial[d].value) << d;
    EXPECT_EQ(parallel[d].x, serial[d].x) << d;
    EXPECT_EQ(parallel[d].iterations, serial[d].iterations) << d;
    EXPECT_EQ(parallel[d].functionEvaluations, serial[d].functionEvaluations)
        << d;
  }
}

TEST(Bfgs, HandlesInfeasibleRegions) {
  // +inf outside the unit disk; optimum at an interior point.
  const Objective f = [](std::span<const double> x) -> double {
    const double r2 = x[0] * x[0] + x[1] * x[1];
    if (r2 > 1.0) return std::numeric_limits<double>::infinity();
    return (x[0] - 0.3) * (x[0] - 0.3) + (x[1] + 0.2) * (x[1] + 0.2);
  };
  const auto r = minimizeBfgs(f, std::vector<double>{0.0, 0.0});
  EXPECT_NEAR(r.x[0], 0.3, 1e-4);
  EXPECT_NEAR(r.x[1], -0.2, 1e-4);
}

TEST(Bfgs, RespectsIterationCap) {
  const Objective f = [](std::span<const double> x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  BfgsOptions opts;
  opts.maxIterations = 3;
  const auto r = minimizeBfgs(f, std::vector<double>{-1.2, 1.0}, opts);
  EXPECT_LE(r.iterations, 3);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.message, "maximum iterations reached");
}

TEST(Bfgs, AlreadyAtOptimum) {
  const Objective f = [](std::span<const double> x) { return x[0] * x[0]; };
  const auto r = minimizeBfgs(f, std::vector<double>{0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

TEST(Bfgs, ThrowsOnInfeasibleStart) {
  const Objective f = [](std::span<const double>) {
    return std::numeric_limits<double>::quiet_NaN();
  };
  EXPECT_THROW(minimizeBfgs(f, std::vector<double>{0.0}),
               std::invalid_argument);
}

// An objective that returns NaN beyond a bound (how the likelihood behaves
// when a trial point walks a parameter off its domain).  Only the *initial*
// point aborts; NaN line-search trials are failed steps that backtrack —
// the same contract as Nelder-Mead's sanitize-to-infinity.
TEST(Bfgs, SurvivesNaNTrialPointsOffABound) {
  const Objective f = [](std::span<const double> x) -> double {
    if (x[0] > 1.0) return std::numeric_limits<double>::quiet_NaN();
    return (x[0] - 3.0) * (x[0] - 3.0);
  };
  // From 0.5 the descent direction points at the minimum at 3.0, so full
  // steps repeatedly land in the NaN region and must backtrack.
  const auto r = minimizeBfgs(f, std::vector<double>{0.5});
  EXPECT_TRUE(std::isfinite(r.value));
  EXPECT_LE(r.x[0], 1.0);
  EXPECT_LT(r.value, (0.5 - 3.0) * (0.5 - 3.0));  // made real progress
}

// When a *gradient probe* hits the NaN region (start pinned to the bound so
// the forward-difference step crosses it), BFGS must neither abort nor
// report convergence off a poisoned gradient: it stops cleanly at the last
// accepted point with a finite value.
TEST(Bfgs, NaNGradientProbeStopsCleanly) {
  const Objective f = [](std::span<const double> x) -> double {
    if (x[0] > 1.0) return std::numeric_limits<double>::quiet_NaN();
    return (x[0] - 3.0) * (x[0] - 3.0);
  };
  const auto r = minimizeBfgs(f, std::vector<double>{1.0});
  EXPECT_TRUE(std::isfinite(r.value));
  EXPECT_DOUBLE_EQ(r.x[0], 1.0);  // start returned unchanged
  EXPECT_FALSE(r.converged);
  EXPECT_NE(r.message.find("gradient not finite"), std::string::npos)
      << r.message;
}

// ---------- Nelder-Mead ----------

TEST(NelderMead, SolvesConvexQuadratic) {
  const Objective f = [](std::span<const double> x) {
    double s = 0;
    for (std::size_t i = 0; i < x.size(); ++i)
      s += (i + 1.0) * (x[i] - 1.0) * (x[i] - 1.0);
    return s;
  };
  const auto r = minimizeNelderMead(f, std::vector<double>{4.0, -2.0, 0.5});
  EXPECT_TRUE(r.converged);
  for (double xi : r.x) EXPECT_NEAR(xi, 1.0, 1e-4);
}

TEST(NelderMead, SolvesRosenbrock) {
  const Objective f = [](std::span<const double> x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions opts;
  opts.maxIterations = 5000;
  const auto r = minimizeNelderMead(f, std::vector<double>{-1.2, 1.0}, opts);
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(NelderMead, HandlesInfeasibleRegions) {
  const Objective f = [](std::span<const double> x) -> double {
    if (x[0] * x[0] + x[1] * x[1] > 1.0)
      return std::numeric_limits<double>::infinity();
    return (x[0] - 0.3) * (x[0] - 0.3) + (x[1] + 0.2) * (x[1] + 0.2);
  };
  NelderMeadOptions opts;
  opts.initialStep = 0.2;  // keep the initial simplex feasible
  const auto r = minimizeNelderMead(f, std::vector<double>{0.0, 0.0}, opts);
  EXPECT_NEAR(r.x[0], 0.3, 1e-3);
  EXPECT_NEAR(r.x[1], -0.2, 1e-3);
}

TEST(NelderMead, AgreesWithBfgsOnSmoothProblem) {
  const Objective f = [](std::span<const double> x) {
    return std::pow(x[0] - 2.0, 4) + std::pow(x[1] + 1.0, 2) +
           0.5 * x[0] * x[1];
  };
  const std::vector<double> x0{3.0, 3.0};
  const auto nm = minimizeNelderMead(f, x0);
  const auto bf = minimizeBfgs(f, x0);
  EXPECT_NEAR(nm.value, bf.value, 1e-4 * (1 + std::fabs(bf.value)));
}

TEST(NelderMead, RespectsIterationCap) {
  const Objective f = [](std::span<const double> x) { return x[0] * x[0]; };
  NelderMeadOptions opts;
  opts.maxIterations = 2;
  const auto r = minimizeNelderMead(f, std::vector<double>{100.0}, opts);
  EXPECT_LE(r.iterations, 2);
  EXPECT_FALSE(r.converged);
}

TEST(NelderMead, ThrowsOnInfeasibleStart) {
  const Objective f = [](std::span<const double>) {
    return std::numeric_limits<double>::quiet_NaN();
  };
  EXPECT_THROW(minimizeNelderMead(f, std::vector<double>{0.0}),
               std::invalid_argument);
}

TEST(Bfgs, QuarticValleyConverges) {
  const Objective f = [](std::span<const double> x) {
    return std::pow(x[0] - 2.0, 4) + x[1] * x[1];
  };
  BfgsOptions opts;
  opts.maxIterations = 200;
  const auto r = minimizeBfgs(f, std::vector<double>{5.0, 5.0}, opts);
  EXPECT_LT(r.value, 1e-3);
  EXPECT_NEAR(r.x[1], 0.0, 1e-3);
  EXPECT_GT(r.functionEvaluations, r.iterations);
}

}  // namespace
}  // namespace slim::opt
