// Tests for the generic omega-class mixtures and the M1a/M2a site models —
// the "further ML-based evolutionary models" extension of the paper's
// conclusion, running through the same likelihood engine as model A.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "core/site_models.hpp"
#include "expm/pade.hpp"
#include "model/codon_model.hpp"
#include "model/site_mixture.hpp"
#include "sim/datasets.hpp"
#include "test_util.hpp"

namespace slim {
namespace {

using model::MixtureSpec;
using model::SiteModelParams;

const bio::GeneticCode& gc() { return bio::GeneticCode::universal(); }

// ---------- spec construction ----------

TEST(MixtureSpec, M1aStructure) {
  const auto pi = testutil::randomFrequencies(61, 1);
  SiteModelParams p;
  p.p0 = 0.7;
  const auto spec = model::buildM1aSpec(gc(), pi, p);
  ASSERT_EQ(spec.numClasses(), 2);
  ASSERT_EQ(spec.numOmegas(), 2);
  EXPECT_DOUBLE_EQ(spec.classes[0].proportion, 0.7);
  EXPECT_DOUBLE_EQ(spec.classes[1].proportion, 0.3);
  EXPECT_DOUBLE_EQ(spec.omegas[1], 1.0);
  EXPECT_TRUE(spec.branchHomogeneous());
}

TEST(MixtureSpec, M2aStructure) {
  const auto pi = testutil::randomFrequencies(61, 2);
  SiteModelParams p;
  p.p0 = 0.5;
  p.p1 = 0.3;
  p.omega2 = 3.0;
  const auto spec = model::buildM2aSpec(gc(), pi, p);
  ASSERT_EQ(spec.numClasses(), 3);
  EXPECT_NEAR(spec.classes[2].proportion, 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(spec.omegas[2], 3.0);
  EXPECT_TRUE(spec.branchHomogeneous());
}

TEST(MixtureSpec, ModelAIsBranchHeterogeneous) {
  const auto pi = testutil::randomFrequencies(61, 3);
  const auto spec = model::buildModelASpec(gc(), pi, model::BranchSiteParams{},
                                           model::Hypothesis::H1);
  ASSERT_EQ(spec.numClasses(), 4);
  ASSERT_EQ(spec.numOmegas(), 3);
  EXPECT_FALSE(spec.branchHomogeneous());
  // Classes 2a/2b differ between background and foreground.
  EXPECT_NE(spec.classes[2].omegaBackground(), spec.classes[2].omegaForeground());
}

TEST(MixtureSpec, ScaleNormalizesWeightedBackgroundRate) {
  const auto pi = testutil::randomFrequencies(61, 4);
  SiteModelParams p;
  const auto spec = model::buildM2aSpec(gc(), pi, p);
  linalg::Matrix q(61, 61);
  double weighted = 0;
  for (const auto& c : spec.classes) {
    model::buildRateMatrix(spec.scaledS[c.omegaBackground()], pi, q);
    weighted += c.proportion * model::expectedRate(q, pi);
  }
  EXPECT_NEAR(weighted, 1.0, 1e-10);
}

TEST(MixtureSpec, ValidationCatchesBadSpecs) {
  const auto pi = testutil::randomFrequencies(61, 5);
  auto spec = model::buildM1aSpec(gc(), pi, SiteModelParams{});
  spec.classes[0].proportion = 0.9;  // no longer sums to 1
  EXPECT_THROW(spec.validate(61), std::invalid_argument);

  auto spec2 = model::buildM1aSpec(gc(), pi, SiteModelParams{});
  spec2.classes[0].omega = {7};  // out of range
  EXPECT_THROW(spec2.validate(61), std::invalid_argument);

  EXPECT_THROW(model::buildM1aSpec(gc(), pi, {2.0, 1.5, 2.0, 0.5, 0.4}),
               std::invalid_argument);  // omega0 >= 1
  EXPECT_THROW(model::buildM2aSpec(gc(), pi, {2.0, 0.1, 0.5, 0.5, 0.4}),
               std::invalid_argument);  // omega2 < 1
}

// ---------- generic evaluator ----------

struct Fixture {
  seqio::CodonAlignment ca;
  seqio::SitePatterns sp;
  std::vector<double> pi;
  tree::Tree tree;
};

Fixture makeFixture(int numCodons = 25) {
  sim::Rng rng(314);
  auto tree = sim::yuleTree(5, rng);
  sim::pickForegroundBranch(tree, rng);
  const auto piGen = sim::randomCodonFrequencies(61, 5, rng);
  const auto simOut =
      sim::evolveBranchSite(gc(), tree, sim::defaultSimulationParams(),
                            model::Hypothesis::H1, numCodons, piGen, rng);
  Fixture f;
  f.ca = seqio::encodeCodons(simOut.alignment, gc());
  f.sp = seqio::compressPatterns(f.ca);
  f.pi = model::estimateCodonFrequencies(f.ca, model::CodonFrequencyModel::F3x4);
  f.tree = std::move(tree);
  return f;
}

TEST(GenericEvaluator, ModelASpecMatchesParamsPath) {
  const auto f = makeFixture();
  lik::BranchSiteLikelihood eval(f.ca, f.sp, f.pi, f.tree,
                                 model::Hypothesis::H1, lik::slimOptions());
  model::BranchSiteParams params;
  params.kappa = 2.1;
  params.omega2 = 3.3;
  const double viaParams = eval.logLikelihood(params);
  const double viaSpec = eval.logLikelihood(
      model::buildModelASpec(gc(), f.pi, params, model::Hypothesis::H1));
  EXPECT_DOUBLE_EQ(viaParams, viaSpec);
}

TEST(GenericEvaluator, M2aApproachesM1aAsThirdClassVanishes) {
  const auto f = makeFixture();
  lik::BranchSiteLikelihood eval(f.ca, f.sp, f.pi, f.tree,
                                 model::Hypothesis::H1, lik::slimOptions());
  SiteModelParams m1a;
  m1a.p0 = 0.6;
  const double lnLM1a = eval.logLikelihood(model::buildM1aSpec(gc(), f.pi, m1a));

  SiteModelParams m2a = m1a;
  m2a.p0 = 0.6 * (1 - 1e-9);
  m2a.p1 = 0.4 * (1 - 1e-9);
  m2a.omega2 = 2.0;
  const double lnLM2a = eval.logLikelihood(model::buildM2aSpec(gc(), f.pi, m2a));
  EXPECT_NEAR(lnLM1a, lnLM2a, 1e-5);
}

TEST(GenericEvaluator, M1aMatchesBruteForce) {
  // Independent reference: Pade transition matrices + plain recursion.
  const auto f = makeFixture(8);
  SiteModelParams p;
  p.kappa = 1.8;
  p.omega0 = 0.2;
  p.p0 = 0.55;
  const auto spec = model::buildM1aSpec(gc(), f.pi, p);

  lik::BranchSiteLikelihood eval(f.ca, f.sp, f.pi, f.tree,
                                 model::Hypothesis::H1, lik::slimOptions());
  const double got = eval.logLikelihood(spec);

  const int n = 61;
  double lnL = 0;
  for (std::size_t h = 0; h < f.sp.numPatterns(); ++h) {
    double fh = 0;
    for (int m = 0; m < spec.numClasses(); ++m) {
      linalg::Matrix q(n, n);
      model::buildRateMatrix(spec.scaledS[spec.classes[m].omegaBackground()],
                             f.pi, q);
      std::function<std::vector<double>(int)> partial =
          [&](int node) -> std::vector<double> {
        if (f.tree.node(node).isLeaf()) {
          std::vector<double> v(n, 0.0);
          int row = -1;
          for (std::size_t s = 0; s < f.ca.names.size(); ++s)
            if (f.ca.names[s] == f.tree.node(node).label)
              row = static_cast<int>(s);
          const int state = f.sp.patterns[h][row];
          if (state == seqio::kMissingState)
            v.assign(n, 1.0);
          else
            v[state] = 1.0;
          return v;
        }
        std::vector<double> v(n, 1.0);
        for (int child : f.tree.node(node).children) {
          const auto w = partial(child);
          linalg::Matrix qt = q;
          for (std::size_t x = 0; x < qt.size(); ++x)
            qt.data()[x] *= f.tree.branchLength(child);
          const auto pMat = expm::expmPade(qt);
          for (int i = 0; i < n; ++i) {
            double s = 0;
            for (int j = 0; j < n; ++j) s += pMat(i, j) * w[j];
            v[i] *= s;
          }
        }
        return v;
      };
      const auto rootV = partial(f.tree.root());
      double fmh = 0;
      for (int i = 0; i < n; ++i) fmh += f.pi[i] * rootV[i];
      fh += spec.classes[m].proportion * fmh;
    }
    lnL += f.sp.weights[h] * std::log(fh);
  }
  EXPECT_NEAR(got, lnL, 1e-8 * std::fabs(lnL));
}

// ---------- generic evolver ----------

TEST(EvolveMixture, HomogeneousSpecNeedsNoMark) {
  sim::Rng rng(99);
  const auto tree = sim::yuleTree(4, rng);  // unmarked
  const auto pi = sim::randomCodonFrequencies(61, 5, rng);
  const auto spec = model::buildM2aSpec(gc(), pi, SiteModelParams{});
  const auto out = sim::evolveMixture(gc(), tree, spec, 20, pi, rng);
  EXPECT_EQ(out.alignment.numSequences(), 4u);
  EXPECT_EQ(out.siteClasses.size(), 20u);
}

TEST(EvolveMixture, HeterogeneousSpecRequiresMark) {
  sim::Rng rng(101);
  const auto tree = sim::yuleTree(4, rng);  // unmarked
  const auto pi = sim::randomCodonFrequencies(61, 5, rng);
  const auto spec = model::buildModelASpec(gc(), pi, model::BranchSiteParams{},
                                           model::Hypothesis::H1);
  EXPECT_THROW(sim::evolveMixture(gc(), tree, spec, 5, pi, rng),
               std::invalid_argument);
}

// ---------- the M1a-vs-M2a analysis ----------

TEST(SiteModelAnalysisTest, FitRunsAndRespectsNesting) {
  const auto f = makeFixture(30);
  core::SiteModelFitOptions opts;
  opts.bfgs.maxIterations = 8;
  core::SiteModelAnalysis analysis(f.ca, f.tree, core::EngineKind::Slim, opts);
  const auto m1a = analysis.fit(core::SiteModel::M1a);
  const auto m2a = analysis.fit(core::SiteModel::M2a);
  EXPECT_TRUE(std::isfinite(m1a.lnL));
  EXPECT_TRUE(std::isfinite(m2a.lnL));
  EXPECT_GT(m1a.params.omega0, 0.0);
  EXPECT_LT(m1a.params.omega0, 1.0);
  EXPECT_NEAR(m1a.params.p0 + m1a.params.p1, 1.0, 1e-12);
  EXPECT_GE(m2a.params.omega2, 1.0);
  // M1a is nested in M2a; allow capped-optimizer noise.
  EXPECT_GE(m2a.lnL, m1a.lnL - 0.05);
}

TEST(SiteModelAnalysisTest, WorksOnUnmarkedTree) {
  auto f = makeFixture(15);
  tree::Tree bare = tree::Tree::parseNewick(f.tree.toNewick(/*marks=*/false));
  core::SiteModelFitOptions opts;
  opts.bfgs.maxIterations = 2;
  core::SiteModelAnalysis analysis(f.ca, bare, core::EngineKind::Slim, opts);
  EXPECT_NO_THROW(analysis.fit(core::SiteModel::M1a));
}

TEST(SiteModelAnalysisTest, DetectsPervasiveSelection) {
  // Simulate data where 40% of sites evolve at omega = 8 on all branches:
  // the M1a-vs-M2a LRT (df = 2) should fire.
  sim::Rng rng(555);
  auto tree = sim::yuleTree(6, rng);
  const auto piGen = sim::randomCodonFrequencies(61, 5, rng);
  SiteModelParams truth;
  truth.kappa = 2.0;
  truth.omega0 = 0.05;
  truth.omega2 = 8.0;
  truth.p0 = 0.4;
  truth.p1 = 0.2;
  const auto spec = model::buildM2aSpec(gc(), piGen, truth);
  const auto simOut = sim::evolveMixture(gc(), tree, spec, 100, piGen, rng);
  const auto ca = seqio::encodeCodons(simOut.alignment, gc());

  core::SiteModelFitOptions opts;
  opts.bfgs.maxIterations = 20;
  core::SiteModelAnalysis analysis(ca, tree, core::EngineKind::Slim, opts);
  const auto test = analysis.run();
  EXPECT_DOUBLE_EQ(test.lrt.df, 2.0);
  EXPECT_GT(test.lrt.statistic, 5.99)  // 5% critical value for df = 2
      << "M1a lnL=" << test.m1a.lnL << " M2a lnL=" << test.m2a.lnL;
  EXPECT_GT(test.m2a.params.omega2, 1.5);
  // Posteriors: 3 classes, expanded to all 100 sites.
  EXPECT_EQ(test.posteriors.post.size(), 3u);
  EXPECT_EQ(test.posteriors.positiveSelectionBySite.size(), 100u);
}

}  // namespace
}  // namespace slim
