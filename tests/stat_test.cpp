// Tests for the incomplete gamma functions, the chi-square distribution and
// the likelihood-ratio test.  Reference values from standard tables.

#include <gtest/gtest.h>

#include <cmath>

#include "stat/lrt.hpp"
#include "stat/special_functions.hpp"

namespace slim::stat {
namespace {

// ---------- incomplete gamma ----------

TEST(Gamma, PAndQComplementary) {
  for (double a : {0.5, 1.0, 2.5, 10.0})
    for (double x : {0.1, 1.0, 3.0, 20.0})
      EXPECT_NEAR(regularizedGammaP(a, x) + regularizedGammaQ(a, x), 1.0,
                  1e-12)
          << "a=" << a << " x=" << x;
}

TEST(Gamma, KnownValues) {
  // P(1, x) = 1 - e^{-x} (exponential CDF).
  for (double x : {0.5, 1.0, 2.0, 5.0})
    EXPECT_NEAR(regularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  // P(0.5, x) = erf(sqrt(x)).
  for (double x : {0.25, 1.0, 4.0})
    EXPECT_NEAR(regularizedGammaP(0.5, x), std::erf(std::sqrt(x)), 1e-12);
}

TEST(Gamma, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(regularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularizedGammaQ(2.0, 0.0), 1.0);
  EXPECT_NEAR(regularizedGammaP(2.0, 1e8), 1.0, 1e-12);
  EXPECT_THROW(regularizedGammaP(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(regularizedGammaP(1.0, -1.0), std::invalid_argument);
}

TEST(Gamma, MonotoneInX) {
  double prev = -1;
  for (double x = 0.0; x <= 10.0; x += 0.5) {
    const double p = regularizedGammaP(3.0, x);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

// ---------- chi-square ----------

TEST(Chi2, CriticalValuesDf1) {
  // Classic table values for df = 1.
  EXPECT_NEAR(chi2Cdf(3.841, 1.0), 0.95, 1e-3);
  EXPECT_NEAR(chi2Cdf(6.635, 1.0), 0.99, 1e-3);
  EXPECT_NEAR(chi2Cdf(2.706, 1.0), 0.90, 1e-3);
}

TEST(Chi2, CriticalValuesOtherDf) {
  EXPECT_NEAR(chi2Cdf(5.991, 2.0), 0.95, 1e-3);
  EXPECT_NEAR(chi2Cdf(7.815, 3.0), 0.95, 1e-3);
  EXPECT_NEAR(chi2Cdf(18.307, 10.0), 0.95, 1e-3);
}

TEST(Chi2, SfComplementsCdf) {
  for (double x : {0.5, 2.0, 6.0})
    EXPECT_NEAR(chi2Cdf(x, 1.0) + chi2Sf(x, 1.0), 1.0, 1e-12);
}

TEST(Chi2, Df2IsExponential) {
  // chi2 with 2 df is Exp(1/2): CDF = 1 - e^{-x/2}.
  for (double x : {0.5, 1.0, 4.0})
    EXPECT_NEAR(chi2Cdf(x, 2.0), 1.0 - std::exp(-0.5 * x), 1e-12);
}

TEST(Chi2, QuantileInvertsCdf) {
  for (double p : {0.05, 0.5, 0.9, 0.95, 0.99})
    for (double k : {1.0, 2.0, 5.0}) {
      const double q = chi2Quantile(p, k);
      EXPECT_NEAR(chi2Cdf(q, k), p, 1e-9) << "p=" << p << " k=" << k;
    }
  EXPECT_DOUBLE_EQ(chi2Quantile(0.0, 1.0), 0.0);
}

TEST(Chi2, NegativeArguments) {
  EXPECT_DOUBLE_EQ(chi2Cdf(-1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(chi2Sf(-1.0, 1.0), 1.0);
}

// ---------- LRT ----------

TEST(Lrt, StatisticAndPValues) {
  // 2*dlnL = 3.841 is exactly the 5% critical value for df 1.
  const auto r = likelihoodRatioTest(-1000.0, -1000.0 + 3.841 / 2.0);
  EXPECT_NEAR(r.statistic, 3.841, 1e-12);
  EXPECT_NEAR(r.pChi2, 0.05, 1e-3);
  EXPECT_NEAR(r.pMixture, 0.025, 1e-3);
  EXPECT_FALSE(r.significantAt(0.01));
}

TEST(Lrt, NegativeImprovementClampedToZero) {
  // lnL1 slightly below lnL0 (optimizer noise): statistic 0, p-value 1.
  const auto r = likelihoodRatioTest(-500.0, -500.1);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_DOUBLE_EQ(r.pChi2, 1.0);
  EXPECT_DOUBLE_EQ(r.pMixture, 1.0);
}

TEST(Lrt, StrongSignal) {
  const auto r = likelihoodRatioTest(-1000.0, -980.0);  // 2*dlnL = 40
  EXPECT_LT(r.pChi2, 1e-9);
  EXPECT_TRUE(r.significantAt(0.001));
}

TEST(Lrt, MixtureHalvesTail) {
  const auto r = likelihoodRatioTest(-100.0, -98.0);
  EXPECT_NEAR(r.pMixture, 0.5 * r.pChi2, 1e-15);
}

TEST(Lrt, RejectsBadDf) {
  EXPECT_THROW(likelihoodRatioTest(-1.0, 0.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace slim::stat
