// Permanent regression suite for the fuzzed parsers: replays the seed
// corpus (fuzz/corpus/<target>/) and every checked-in crash reproducer
// (fuzz/crashes/<target>/) through the same code paths the fuzz harnesses
// drive, asserting the parsers' hostile-input contract — parse or throw the
// keyed error type, never anything else, never UB (the ASan+UBSan CI cell
// runs this test sanitized).
//
// When a fuzzer finds a crash, the input file is committed under
// fuzz/crashes/<target>/ and this test makes the fix permanent.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/config.hpp"
#include "serve/protocol.hpp"
#include "support/json_parse.hpp"
#include "tree/branch_classes.hpp"
#include "tree/tree.hpp"

namespace {

namespace fs = std::filesystem;

std::vector<std::string> inputsFor(const std::string& target) {
  std::vector<std::string> paths;
  for (const char* bucket : {"corpus", "crashes"}) {
    const fs::path dir = fs::path(SLIM_FUZZ_DIR) / bucket / target;
    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end; ++it)
      if (it->is_regular_file()) paths.push_back(it->path().string());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Runs `parse` on every corpus/crash input of `target`.  The contract is
/// encoded by the catch clauses in `parse` itself: expected keyed errors
/// are swallowed there; anything else propagates and fails the test.
template <typename Fn>
void replay(const std::string& target, Fn parse) {
  const auto inputs = inputsFor(target);
  ASSERT_FALSE(inputs.empty())
      << "no inputs for '" << target << "' under " << SLIM_FUZZ_DIR;
  for (const auto& path : inputs) {
    const std::string text = readFile(path);
    EXPECT_NO_THROW(parse(text)) << path;
  }
}

/// Mirrors fuzz/fuzz_tree.cpp: first line is Newick, the rest (optional) a
/// branch selector resolved against the parsed tree.
void parseTreeInput(const std::string& text) {
  std::string_view newick = text;
  std::string_view selector;
  if (const auto nl = std::string_view(text).find('\n');
      nl != std::string_view::npos) {
    newick = std::string_view(text).substr(0, nl);
    selector = std::string_view(text).substr(nl + 1);
  }
  const slim::tree::Tree tree = slim::tree::Tree::parseNewick(newick);
  (void)slim::tree::BranchClassMap::fromTree(tree);
  (void)tree.toNewick();
  if (!selector.empty())
    (void)slim::tree::resolveBranchSelector(tree, selector);
}

}  // namespace

TEST(FuzzRegression, JsonParserKeepsItsContract) {
  replay("json", [](const std::string& text) {
    try {
      (void)slim::support::parseJson(text);
    } catch (const slim::support::JsonError&) {
    }
  });
}

TEST(FuzzRegression, ConfigParserKeepsItsContract) {
  replay("config", [](const std::string& text) {
    try {
      (void)slim::core::Config::parseString(text);
    } catch (const slim::core::ConfigError&) {
    }
  });
}

TEST(FuzzRegression, CheckpointParserKeepsItsContract) {
  replay("checkpoint", [](const std::string& text) {
    try {
      (void)slim::core::Checkpoint::parse(text, "fuzz-regression");
    } catch (const slim::core::ConfigError&) {
    }
  });
}

TEST(FuzzRegression, ProtocolParserKeepsItsContract) {
  replay("protocol", [](const std::string& text) {
    try {
      (void)slim::serve::parseRequest(text);
    } catch (const slim::serve::ProtocolError&) {
    } catch (const slim::support::JsonError&) {
    }
  });
}

TEST(FuzzRegression, TreeParserKeepsItsContract) {
  replay("tree", [](const std::string& text) {
    try {
      parseTreeInput(text);
    } catch (const std::invalid_argument&) {
    }
  });
}

// The seed corpus must also contain *valid* inputs (a corpus of rejects
// exercises only the error paths): at least one entry per target has to
// parse cleanly.
TEST(FuzzRegression, SeedCorpusContainsAcceptingInputs) {
  int jsonOk = 0, configOk = 0, checkpointOk = 0, protocolOk = 0,
      treeOk = 0;
  for (const auto& p : inputsFor("json"))
    try {
      (void)slim::support::parseJson(readFile(p));
      ++jsonOk;
    } catch (const slim::support::JsonError&) {
    }
  for (const auto& p : inputsFor("config"))
    try {
      (void)slim::core::Config::parseString(readFile(p));
      ++configOk;
    } catch (const slim::core::ConfigError&) {
    }
  for (const auto& p : inputsFor("checkpoint"))
    try {
      (void)slim::core::Checkpoint::parse(readFile(p), "seed");
      ++checkpointOk;
    } catch (const slim::core::ConfigError&) {
    }
  for (const auto& p : inputsFor("protocol"))
    try {
      (void)slim::serve::parseRequest(readFile(p));
      ++protocolOk;
    } catch (const slim::serve::ProtocolError&) {
    } catch (const slim::support::JsonError&) {
    }
  for (const auto& p : inputsFor("tree"))
    try {
      parseTreeInput(readFile(p));
      ++treeOk;
    } catch (const std::invalid_argument&) {
    }
  EXPECT_GT(jsonOk, 0);
  EXPECT_GT(configOk, 0);
  EXPECT_GT(checkpointOk, 0);
  EXPECT_GT(protocolOk, 0);
  EXPECT_GT(treeOk, 0);
}
