// Tests for alignment IO, codon encoding and site-pattern compression.

#include <gtest/gtest.h>

#include <sstream>

#include "seqio/alignment.hpp"

namespace slim::seqio {
namespace {

const bio::GeneticCode& gc() { return bio::GeneticCode::universal(); }

// ---------- FASTA ----------

TEST(Fasta, ParsesMultilineRecords) {
  const auto aln = Alignment::readFastaString(
      ">seq1 description ignored\nATGAAA\nTTT\n>seq2\nATGAAACCC\n");
  ASSERT_EQ(aln.numSequences(), 2u);
  EXPECT_EQ(aln.sequence(0).name, "seq1");
  EXPECT_EQ(aln.sequence(0).data, "ATGAAATTT");
  EXPECT_EQ(aln.sequence(1).data, "ATGAAACCC");
}

TEST(Fasta, SkipsBlankLinesAndCarriageReturns) {
  const auto aln = Alignment::readFastaString(">a\r\nATG\r\n\r\n>b\nCCC\n");
  ASSERT_EQ(aln.numSequences(), 2u);
  EXPECT_EQ(aln.sequence(0).data, "ATG");
}

TEST(Fasta, RejectsDataBeforeHeader) {
  EXPECT_THROW(Alignment::readFastaString("ATG\n>a\nATG\n"),
               std::invalid_argument);
}

TEST(Fasta, RejectsEmptyInput) {
  EXPECT_THROW(Alignment::readFastaString("\n\n"), std::invalid_argument);
}

TEST(Fasta, WriteReadRoundTrip) {
  Alignment aln;
  aln.addSequence("alpha", "ATGAAATTTCCCGGG");
  aln.addSequence("beta", "ATGAAATTTCCCGGA");
  std::ostringstream os;
  aln.writeFasta(os, /*lineWidth=*/6);
  const auto back = Alignment::readFastaString(os.str());
  ASSERT_EQ(back.numSequences(), 2u);
  EXPECT_EQ(back.sequence(0).data, aln.sequence(0).data);
  EXPECT_EQ(back.sequence(1).name, "beta");
}

// ---------- PHYLIP ----------

TEST(Phylip, ParsesSequentialFormat) {
  const auto aln = Alignment::readPhylipString(
      "2 9\nape  ATGAAATTT\nmonkey  ATG AAA CCC\n");
  ASSERT_EQ(aln.numSequences(), 2u);
  EXPECT_EQ(aln.sequence(1).name, "monkey");
  EXPECT_EQ(aln.sequence(1).data, "ATGAAACCC");
}

TEST(Phylip, ParsesContinuationLines) {
  const auto aln =
      Alignment::readPhylipString("1 9\nape  ATGAAA\nTTT\n");
  ASSERT_EQ(aln.numSequences(), 1u);
  EXPECT_EQ(aln.sequence(0).data, "ATGAAATTT");
}

TEST(Phylip, RejectsCountMismatch) {
  EXPECT_THROW(Alignment::readPhylipString("3 9\nape ATGAAATTT\n"),
               std::invalid_argument);
  EXPECT_THROW(Alignment::readPhylipString("1 6\nape ATGAAATTT\n"),
               std::invalid_argument);
}

TEST(Phylip, WriteReadRoundTrip) {
  Alignment aln;
  aln.addSequence("a", "ATGATG");
  aln.addSequence("b", "ATGATC");
  std::ostringstream os;
  aln.writePhylip(os);
  const auto back = Alignment::readPhylipString(os.str());
  EXPECT_EQ(back.sequence(1).data, "ATGATC");
}

// ---------- validation ----------

TEST(Alignment, ValidateCatchesRaggedLengths) {
  Alignment aln;
  aln.addSequence("a", "ATGATG");
  aln.addSequence("b", "ATG");
  EXPECT_THROW(aln.validate(), std::invalid_argument);
}

TEST(Alignment, ValidateCatchesDuplicateNames) {
  Alignment aln;
  aln.addSequence("a", "ATG");
  aln.addSequence("a", "ATG");
  EXPECT_THROW(aln.validate(), std::invalid_argument);
}

TEST(Alignment, ValidateCatchesNonCodonLength) {
  Alignment aln;
  aln.addSequence("a", "ATGA");
  EXPECT_THROW(aln.validate(/*codon=*/true), std::invalid_argument);
  EXPECT_NO_THROW(aln.validate(/*codon=*/false));
}

TEST(Alignment, FindByName) {
  Alignment aln;
  aln.addSequence("x", "ATG");
  aln.addSequence("y", "CCC");
  EXPECT_EQ(aln.find("y"), 1);
  EXPECT_EQ(aln.find("z"), -1);
}

// ---------- codon encoding ----------

TEST(Encode, BasicStates) {
  Alignment aln;
  aln.addSequence("a", "ATGTTT");
  const auto ca = encodeCodons(aln, gc());
  ASSERT_EQ(ca.numSites(), 2u);
  EXPECT_EQ(ca.states[0][0], gc().senseIndex(*bio::codonFromString("ATG")));
  EXPECT_EQ(ca.states[0][1], gc().senseIndex(*bio::codonFromString("TTT")));
}

TEST(Encode, GapsAndAmbiguityBecomeMissing) {
  Alignment aln;
  aln.addSequence("a", "---ATGANNA-G");
  const auto ca = encodeCodons(aln, gc());
  ASSERT_EQ(ca.numSites(), 4u);
  EXPECT_EQ(ca.states[0][0], kMissingState);   // ---
  EXPECT_NE(ca.states[0][1], kMissingState);   // ATG
  EXPECT_EQ(ca.states[0][2], kMissingState);   // ANN
  EXPECT_EQ(ca.states[0][3], kMissingState);   // A-G
}

TEST(Encode, StopCodonIsErrorByDefault) {
  Alignment aln;
  aln.addSequence("a", "TAAATG");
  EXPECT_THROW(encodeCodons(aln, gc()), std::invalid_argument);
  const auto ca = encodeCodons(aln, gc(), /*stopAsMissing=*/true);
  EXPECT_EQ(ca.states[0][0], kMissingState);
}

TEST(Encode, MitochondrialCodeChangesStops) {
  Alignment aln;
  aln.addSequence("a", "TGATGG");
  // TGA is a stop in the universal code but Trp in vertebrate mito.
  EXPECT_THROW(encodeCodons(aln, gc()), std::invalid_argument);
  EXPECT_NO_THROW(encodeCodons(aln, bio::GeneticCode::vertebrateMitochondrial()));
}

// ---------- site patterns ----------

TEST(Patterns, CompressesIdenticalColumns) {
  Alignment aln;
  aln.addSequence("a", "ATGATGTTT");
  aln.addSequence("b", "ATGATGTTC");
  const auto ca = encodeCodons(aln, gc());
  const auto sp = compressPatterns(ca);
  // Columns: (ATG,ATG), (ATG,ATG), (TTT,TTC) -> 2 patterns.
  ASSERT_EQ(sp.numPatterns(), 2u);
  EXPECT_DOUBLE_EQ(sp.weights[0], 2.0);
  EXPECT_DOUBLE_EQ(sp.weights[1], 1.0);
  EXPECT_EQ(sp.siteToPattern, (std::vector<int>{0, 0, 1}));
}

TEST(Patterns, WeightsSumToSiteCount) {
  Alignment aln;
  aln.addSequence("a", "ATGATGTTTATGCCC");
  aln.addSequence("b", "ATGCTGTTCATGCCA");
  const auto sp = compressPatterns(encodeCodons(aln, gc()));
  double total = 0;
  for (double w : sp.weights) total += w;
  EXPECT_DOUBLE_EQ(total, 5.0);
  EXPECT_EQ(sp.siteToPattern.size(), 5u);
}

TEST(Patterns, MissingDistinguishedFromPresent) {
  Alignment aln;
  aln.addSequence("a", "ATG---");
  aln.addSequence("b", "ATGATG");
  const auto sp = compressPatterns(encodeCodons(aln, gc()));
  EXPECT_EQ(sp.numPatterns(), 2u);
}

TEST(Patterns, AllSitesDistinct) {
  Alignment aln;
  aln.addSequence("a", "ATGTTTCCC");
  const auto sp = compressPatterns(encodeCodons(aln, gc()));
  EXPECT_EQ(sp.numPatterns(), 3u);
}

// ---------- counting ----------

TEST(Counts, CodonCountsSkipMissing) {
  Alignment aln;
  aln.addSequence("a", "ATGATG---");
  const auto ca = encodeCodons(aln, gc());
  const auto counts = codonCounts(ca);
  double total = 0;
  for (double c : counts) total += c;
  EXPECT_DOUBLE_EQ(total, 2.0);
  EXPECT_DOUBLE_EQ(counts[gc().senseIndex(*bio::codonFromString("ATG"))], 2.0);
}

TEST(Counts, PseudocountApplied) {
  Alignment aln;
  aln.addSequence("a", "ATG");
  const auto counts = codonCounts(encodeCodons(aln, gc()), 0.5);
  double total = 0;
  for (double c : counts) total += c;
  EXPECT_DOUBLE_EQ(total, 0.5 * 61 + 1.0);
}

TEST(Counts, PositionalNucleotideCounts) {
  Alignment aln;
  aln.addSequence("a", "ATGCTG");
  const auto pos = positionalNucleotideCounts(encodeCodons(aln, gc()));
  // Position 0: A and C -> one A, one C.
  EXPECT_DOUBLE_EQ(pos[0][static_cast<int>(bio::Nucleotide::A)], 1.0);
  EXPECT_DOUBLE_EQ(pos[0][static_cast<int>(bio::Nucleotide::C)], 1.0);
  // Position 1: T twice.
  EXPECT_DOUBLE_EQ(pos[1][static_cast<int>(bio::Nucleotide::T)], 2.0);
  // Position 2: G twice.
  EXPECT_DOUBLE_EQ(pos[2][static_cast<int>(bio::Nucleotide::G)], 2.0);
}

}  // namespace
}  // namespace slim::seqio
