// Cross-module integration scenarios:
//   1. The paper's accuracy experiment in miniature — both engines fit the
//      same data from the same start and must land on (near-)identical lnL.
//   2. Statistical behaviour of the full pipeline — the LRT fires on data
//      simulated with strong positive selection and stays quiet on
//      H0-simulated data.
//   3. Full-text round trip: FASTA + Newick in, report out.

#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.hpp"
#include "core/report.hpp"
#include "sim/datasets.hpp"

namespace slim::core {
namespace {

using model::Hypothesis;

TEST(EngineAccuracy, BothEnginesReachTheSameLikelihood) {
  // Paper Sec. IV-1: relative lnL difference D between CodeML and
  // SlimCodeML is <= 5.5e-8 across datasets.  Our two engines share the
  // optimizer, so with equal iteration budgets D should be tiny.
  sim::Rng rng(7);
  auto tree = sim::yuleTree(6, rng);
  sim::pickForegroundBranch(tree, rng);
  const auto& gc = bio::GeneticCode::universal();
  const auto pi = sim::randomCodonFrequencies(gc.numSense(), 5, rng);
  const auto simOut = sim::evolveBranchSite(
      gc, tree, sim::defaultSimulationParams(), Hypothesis::H1, 40, pi, rng);
  const auto ca = seqio::encodeCodons(simOut.alignment, gc);

  FitOptions opts;
  opts.bfgs.maxIterations = 10;

  for (Hypothesis h : {Hypothesis::H0, Hypothesis::H1}) {
    BranchSiteAnalysis baseline(ca, tree, EngineKind::CodemlBaseline, opts);
    BranchSiteAnalysis slim(ca, tree, EngineKind::Slim, opts);
    const double lnLBase = baseline.fit(h).lnL;
    const double lnLSlim = slim.fit(h).lnL;
    const double d = std::fabs(lnLBase - lnLSlim) / std::fabs(lnLBase);
    EXPECT_LT(d, 1e-6) << model::hypothesisName(h)
                       << ": CodeML=" << lnLBase << " Slim=" << lnLSlim;
  }
}

TEST(Detection, LrtFiresOnStrongPositiveSelection) {
  // Simulate with blatant selection (omega2 = 10, >half the sites in the
  // positive classes) on a long foreground branch, then test.
  sim::Rng rng(11);
  auto tree = tree::Tree::parseNewick(
      "((a:0.15,b:0.15):0.1,(c:0.15,d:0.15):0.1,e:0.2);");
  const int fg = tree.node(tree.findLeaf("a")).parent;
  tree.setForegroundBranch(fg);
  tree.setBranchLength(fg, 0.5);

  const auto& gc = bio::GeneticCode::universal();
  const auto pi = sim::randomCodonFrequencies(gc.numSense(), 5, rng);
  model::BranchSiteParams truth;
  truth.kappa = 2.0;
  truth.omega0 = 0.05;
  truth.omega2 = 10.0;
  truth.p0 = 0.2;
  truth.p1 = 0.2;
  const auto simOut =
      sim::evolveBranchSite(gc, tree, truth, Hypothesis::H1, 120, pi, rng);
  const auto ca = seqio::encodeCodons(simOut.alignment, gc);

  FitOptions opts;
  opts.bfgs.maxIterations = 25;
  BranchSiteAnalysis analysis(ca, tree, EngineKind::Slim, opts);
  const auto test = analysis.run();

  EXPECT_GT(test.lrt.statistic, 3.84)  // 5% critical value, df 1
      << "H0 lnL=" << test.h0.lnL << " H1 lnL=" << test.h1.lnL;
  EXPECT_GT(test.h1.params.omega2, 1.5);
}

TEST(Detection, LrtQuietOnNullData) {
  // Data simulated under H0 (omega2 = 1): the statistic should be small.
  sim::Rng rng(13);
  auto tree = sim::yuleTree(6, rng);
  sim::pickForegroundBranch(tree, rng);
  const auto& gc = bio::GeneticCode::universal();
  const auto pi = sim::randomCodonFrequencies(gc.numSense(), 5, rng);
  model::BranchSiteParams truth = sim::defaultSimulationParams();
  const auto simOut =
      sim::evolveBranchSite(gc, tree, truth, Hypothesis::H0, 100, pi, rng);
  const auto ca = seqio::encodeCodons(simOut.alignment, gc);

  FitOptions opts;
  opts.bfgs.maxIterations = 20;
  BranchSiteAnalysis analysis(ca, tree, EngineKind::Slim, opts);
  const auto test = analysis.run();
  // 10.83 is the 0.1% critical value: a null run should stay well below.
  EXPECT_LT(test.lrt.statistic, 10.83);
}

TEST(RoundTrip, TextFormatsInReportOut) {
  // The full user path: parse FASTA text and a marked Newick string, run,
  // and produce a report.
  const char* fasta =
      ">human\nATGGCTAAATTTCCCGGGACT\n"
      ">chimp\nATGGCTAAATTCCCCGGGACT\n"
      ">gorilla\nATGGCAAAATTTCCCGGAACT\n"
      ">orang\nATGGCTAAGTTTCCAGGGACA\n";
  const auto aln = seqio::Alignment::readFastaString(fasta);
  const auto ca = seqio::encodeCodons(aln, bio::GeneticCode::universal());
  const auto tree = tree::Tree::parseNewick(
      "((human:0.05,chimp:0.05) #1:0.03,(gorilla:0.08,orang:0.12):0.02);");

  FitOptions opts;
  opts.bfgs.maxIterations = 6;
  BranchSiteAnalysis analysis(ca, tree, EngineKind::Slim, opts);
  const auto test = analysis.run();
  const auto report = testReportString(test, EngineKind::Slim);
  EXPECT_NE(report.find("lnL"), std::string::npos);
  EXPECT_TRUE(std::isfinite(test.h0.lnL));
  EXPECT_TRUE(std::isfinite(test.h1.lnL));
  // With a 6-iteration cap the two (differently-parameterized) searches can
  // land within optimizer noise of each other; only gross inversions are
  // bugs.
  EXPECT_GE(test.h1.lnL, test.h0.lnL - 0.01);
}

TEST(Workload, CountersScaleWithTreeAndPatterns) {
  // propagatorBuilds per evaluation = 2*(B-1) + 3 under H1.
  sim::Rng rng(17);
  auto tree = sim::yuleTree(9, rng);
  sim::pickForegroundBranch(tree, rng);
  const auto& gc = bio::GeneticCode::universal();
  const auto pi = sim::randomCodonFrequencies(gc.numSense(), 5, rng);
  const auto simOut = sim::evolveBranchSite(
      gc, tree, sim::defaultSimulationParams(), Hypothesis::H1, 25, pi, rng);
  const auto ca = seqio::encodeCodons(simOut.alignment, gc);
  const auto sp = seqio::compressPatterns(ca);
  const auto freqs =
      model::estimateCodonFrequencies(ca, model::CodonFrequencyModel::F3x4);

  lik::BranchSiteLikelihood eval(ca, sp, freqs, tree, Hypothesis::H1,
                                 lik::slimOptions());
  eval.logLikelihood(sim::defaultSimulationParams());
  const int numBranches = tree.numNodes() - 1;  // 16
  EXPECT_EQ(eval.counters().propagatorBuilds, 2 * (numBranches - 1) + 3);
  EXPECT_EQ(eval.counters().evaluations, 1);
  // 4 site classes x branches x patterns propagations.
  EXPECT_EQ(eval.counters().patternPropagations,
            4LL * numBranches * static_cast<long>(sp.numPatterns()));
}

}  // namespace
}  // namespace slim::core
