// Simulation-validation studies (valid/study.hpp): the determinism contract
// (a fixed-seed study is bit-identical across worker counts and parallel
// policies, down to the report bytes), checkpointed studies resuming
// mid-stream without changing a bit, and the report schema.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/config.hpp"
#include "valid/study.hpp"

namespace {

using namespace slim;
using core::ParallelPolicy;

namespace fs = std::filesystem;

/// Fresh per-test scratch directory (removed on destruction).
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::path(::testing::TempDir()) /
             ("slim_valid_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

/// A study small enough for unit tests: 2 scenarios x 2 replicates of
/// 5-taxon, 30-codon genes, 3 optimizer iterations per fit.
valid::StudySpec tinySpec() {
  valid::StudySpec spec = valid::defaultStudySpec();
  spec.replicates = 2;
  spec.numSpecies = 5;
  spec.numCodons = 30;
  spec.seed = 20260807;
  spec.fit.bfgs.maxIterations = 3;
  return spec;
}

/// The statistical content two runs of one spec must share exactly
/// (timings, counters and resume provenance legitimately differ).
void expectSameStats(const valid::StudyResult& a, const valid::StudyResult& b,
                     const std::string& label) {
  ASSERT_EQ(a.table.size(), b.table.size()) << label;
  for (std::size_t g = 0; g < a.table.size(); ++g) {
    EXPECT_EQ(a.table[g].scenario, b.table[g].scenario) << label;
    EXPECT_EQ(a.table[g].seed, b.table[g].seed) << label;
    EXPECT_EQ(a.table[g].lnL0, b.table[g].lnL0) << label << " gene " << g;
    EXPECT_EQ(a.table[g].lnL1, b.table[g].lnL1) << label << " gene " << g;
    EXPECT_EQ(a.table[g].statistic, b.table[g].statistic) << label;
    EXPECT_EQ(a.table[g].pChi2, b.table[g].pChi2) << label;
    EXPECT_EQ(a.table[g].pMixture, b.table[g].pMixture) << label;
  }
  ASSERT_EQ(a.summaries.size(), b.summaries.size()) << label;
  for (std::size_t s = 0; s < a.summaries.size(); ++s)
    EXPECT_EQ(a.summaries[s].rejections, b.summaries[s].rejections) << label;
  EXPECT_EQ(a.auc, b.auc) << label;
}

// ---------- simulation plumbing ----------

TEST(StudySimulation, ReplicateSeedsAreIndexDerivedAndDistinct) {
  // Pure function of the indices...
  EXPECT_EQ(valid::replicateSeed(7, 1, 3), valid::replicateSeed(7, 1, 3));
  // ...and distinct across scenario/replicate for study-sized index ranges.
  EXPECT_NE(valid::replicateSeed(7, 0, 0), valid::replicateSeed(7, 0, 1));
  EXPECT_NE(valid::replicateSeed(7, 0, 0), valid::replicateSeed(7, 1, 0));
}

TEST(StudySimulation, GenesAreReproducibleAndLabeled) {
  const valid::StudySpec spec = tinySpec();
  const valid::SimulatedGene a = valid::simulateGene(spec, 1, 0);
  const valid::SimulatedGene b = valid::simulateGene(spec, 1, 0);
  EXPECT_EQ(a.name, "positive-r0");
  EXPECT_EQ(a.codons.names, b.codons.names);
  EXPECT_EQ(a.codons.states, b.codons.states);
  EXPECT_GT(a.codons.numSites(), 0u);
}

// ---------- the determinism contract ----------

TEST(Study, BitIdenticalAcrossThreadCountsAndPolicies) {
  const valid::StudySpec base = tinySpec();
  const valid::StudyResult reference = valid::runStudy(base);
  ASSERT_EQ(reference.table.size(), 4u);
  const std::string referenceReport =
      valid::studyReportJson(base, reference, /*includeRunInfo=*/false);
  EXPECT_NE(referenceReport.find("slimcodeml-validate-v1"),
            std::string::npos);

  struct Cell {
    int threads;
    ParallelPolicy policy;
  };
  for (const Cell cell : {Cell{2, ParallelPolicy::Auto},
                          Cell{2, ParallelPolicy::TaskLevel},
                          Cell{2, ParallelPolicy::PatternLevel},
                          Cell{8, ParallelPolicy::Auto}}) {
    valid::StudySpec spec = tinySpec();
    spec.fit.tuning.numThreads = cell.threads;
    spec.fit.tuning.policy = cell.policy;
    const valid::StudyResult result = valid::runStudy(spec);
    const std::string label = std::to_string(cell.threads) + " threads, " +
                              core::parallelPolicyName(cell.policy);
    expectSameStats(reference, result, label);
    // The whole report body — spec, summaries, every replicate row, the
    // ROC, the AUC — is byte-identical.
    EXPECT_EQ(valid::studyReportJson(spec, result, false), referenceReport)
        << label;
  }
}

// ---------- report schema ----------

TEST(StudyReport, CarriesTheStableSchema) {
  const valid::StudySpec spec = tinySpec();
  const valid::StudyResult result = valid::runStudy(spec);
  const std::string report = valid::studyReportJson(spec, result);
  for (const char* needle :
       {"\"schema\": \"slimcodeml-validate-v1\"", "\"scenarios\":",
        "\"replicates\":", "\"roc\":", "\"auc\":", "\"rejections\":",
        "\"pChi2\":", "\"batch\":"})
    EXPECT_NE(report.find(needle), std::string::npos) << needle;
  // The run-info block is exactly what --stable removes.
  const std::string stable = valid::studyReportJson(spec, result, false);
  EXPECT_EQ(stable.find("\"batch\":"), std::string::npos);
}

// ---------- checkpointed studies ----------

TEST(StudyCheckpoint, HashCoversTruthButNotWorkerCount) {
  const valid::StudySpec base = tinySpec();
  valid::StudySpec moreThreads = base;
  moreThreads.fit.tuning.numThreads = 8;
  moreThreads.fit.tuning.policy = ParallelPolicy::TaskLevel;
  // Bit-neutral knobs must not invalidate a checkpoint...
  EXPECT_EQ(valid::studyConfigHash(base), valid::studyConfigHash(moreThreads));
  // ...anything shaping the data or the trajectory must.
  valid::StudySpec otherSeed = base;
  otherSeed.seed += 1;
  EXPECT_NE(valid::studyConfigHash(base), valid::studyConfigHash(otherSeed));
  valid::StudySpec otherTruth = base;
  for (auto& s : otherTruth.scenarios)
    if (s.positive) s.params.omega2 = 9.0;
  EXPECT_NE(valid::studyConfigHash(base), valid::studyConfigHash(otherTruth));
}

TEST(StudyCheckpoint, KilledMidStudyThenResumedMatchesUninterruptedExactly) {
  const TempDir dir("resume");
  const std::string ckpt = dir.file("study.ckpt");
  const valid::StudySpec base = tinySpec();
  const std::uint64_t hash = valid::studyConfigHash(base);

  // The uninterrupted reference.
  const valid::StudyResult reference = valid::runStudy(base);

  // A full checkpointed run, persisted on every iteration...
  {
    valid::StudySpec spec = base;
    const auto manager =
        core::CheckpointManager::open(ckpt, 0, hash, /*resume=*/false);
    spec.checkpoint = manager.get();
    expectSameStats(reference, valid::runStudy(spec), "checkpointed");
  }

  // ...then simulate a mid-study kill: strip half the completed fits from
  // the file, exactly the state a SIGKILL between persists leaves behind.
  {
    core::Checkpoint image = core::Checkpoint::load(ckpt);
    ASSERT_EQ(image.completed.size(), 8u);  // 4 genes x H0/H1
    auto it = image.completed.begin();
    for (int drop = 0; drop < 4; ++drop) it = image.completed.erase(it);
    image.save(ckpt);
  }

  // Resume: the surviving half is restored, the dropped half recomputed —
  // and every statistic matches the uninterrupted run exactly.
  {
    valid::StudySpec spec = base;
    const auto manager =
        core::CheckpointManager::open(ckpt, 0, hash, /*resume=*/true);
    ASSERT_TRUE(manager->resumedFromFile());
    spec.checkpoint = manager.get();
    const valid::StudyResult resumed = valid::runStudy(spec);
    expectSameStats(reference, resumed, "resumed");
    // Restored fits carry resume provenance; recomputed ones do not.
    int restored = 0;
    for (const auto& test : resumed.tests)
      restored += !test.h0.resumedFrom.empty() + !test.h1.resumedFrom.empty();
    EXPECT_EQ(restored, 4);
  }

  // A second resume finds everything complete: all fits are restored, no
  // optimizer work is redone.
  {
    valid::StudySpec spec = base;
    const auto manager =
        core::CheckpointManager::open(ckpt, 0, hash, /*resume=*/true);
    spec.checkpoint = manager.get();
    const valid::StudyResult replayed = valid::runStudy(spec);
    expectSameStats(reference, replayed, "replayed");
    for (const auto& test : replayed.tests) {
      EXPECT_EQ(test.h0.resumedFrom, ckpt);
      EXPECT_EQ(test.h1.resumedFrom, ckpt);
    }
  }

  // A different study refuses the checkpoint outright.
  valid::StudySpec other = base;
  other.seed += 1;
  EXPECT_THROW(core::CheckpointManager::open(
                   ckpt, 0, valid::studyConfigHash(other), /*resume=*/true),
               core::ConfigError);
}

}  // namespace
