// Tests for the pluggable compute-backend subsystem (src/backend/).
//
// The contract under test:
//   * `backend = reference` is bit-identical (EXPECT_EQ) to the engine's
//     default path at scalar SIMD — lnL and the analytic branch gradient,
//     across thread counts and block sizes;
//   * every backend available in the build agrees with reference to
//     <= 1e-10 relative on the log-likelihood;
//   * the adaptive (Higham scaling-and-squaring) expm matches the eigen
//     propagator to <= 1e-12 on reversible Q and an independent
//     Taylor-series reference on random non-reversible Q, including norms
//     large enough to force multiple squarings;
//   * an explicitly requested backend missing from the build fails loudly
//     at evaluator construction (std::invalid_argument), like `simd =`.

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

#include "backend/compute_backend.hpp"
#include "backend/expm_pade.hpp"
#include "expm/codon_eigen_system.hpp"
#include "lik/branch_site_likelihood.hpp"
#include "linalg/blas3.hpp"
#include "linalg/simd.hpp"
#include "model/codon_model.hpp"
#include "seqio/alignment.hpp"
#include "sim/datasets.hpp"
#include "sim/rng.hpp"
#include "test_util.hpp"

namespace slim::backend {
namespace {

using linalg::Matrix;

std::vector<BackendKind> availableBackends() {
  std::vector<BackendKind> out;
  for (const auto k :
       {BackendKind::Reference, BackendKind::Simd, BackendKind::Blas})
    if (backendAvailable(k)) out.push_back(k);
  return out;
}

// ---------- plumbing: names, parsing, resolution ----------

TEST(BackendPlumbing, ParseAndNames) {
  BackendMode m = BackendMode::Reference;
  EXPECT_TRUE(parseBackendMode("auto", m));
  EXPECT_EQ(m, BackendMode::Auto);
  EXPECT_TRUE(parseBackendMode("reference", m));
  EXPECT_EQ(m, BackendMode::Reference);
  EXPECT_TRUE(parseBackendMode("simd", m));
  EXPECT_EQ(m, BackendMode::Simd);
  EXPECT_TRUE(parseBackendMode("blas", m));
  EXPECT_EQ(m, BackendMode::Blas);
  EXPECT_FALSE(parseBackendMode("cuda", m));
  EXPECT_EQ(m, BackendMode::Blas);  // untouched on failure

  BackendKind k = BackendKind::Simd;
  EXPECT_TRUE(parseBackendKind("reference", k));
  EXPECT_EQ(k, BackendKind::Reference);
  EXPECT_FALSE(parseBackendKind("auto", k));  // kinds are resolved, no auto
  EXPECT_EQ(k, BackendKind::Reference);

  EXPECT_STREQ(backendModeName(BackendMode::Auto), "auto");
  EXPECT_STREQ(backendKindName(BackendKind::Reference), "reference");
  EXPECT_STREQ(backendKindName(BackendKind::Simd), "simd");
  EXPECT_STREQ(backendKindName(BackendKind::Blas), "blas");
}

TEST(BackendPlumbing, AutoReproducesPreBackendDispatch) {
  // Auto at scalar SIMD is the legacy scalar path; at any vector level it is
  // the PR-4 kernel dispatch.  Auto never opts into vendor BLAS.
  EXPECT_EQ(resolveBackendKind(BackendMode::Auto, linalg::SimdLevel::Scalar),
            BackendKind::Reference);
  for (const auto level : {linalg::SimdLevel::Avx2, linalg::SimdLevel::Avx512})
    if (linalg::simdLevelAvailable(level))
      EXPECT_EQ(resolveBackendKind(BackendMode::Auto, level),
                BackendKind::Simd);
}

TEST(BackendPlumbing, ReferenceAndSimdAlwaysCompiled) {
  EXPECT_TRUE(backendCompiled(BackendKind::Reference));
  EXPECT_TRUE(backendCompiled(BackendKind::Simd));
  EXPECT_TRUE(backendAvailable(BackendKind::Reference));
  // blas availability tracks the build option.
  EXPECT_EQ(backendAvailable(BackendKind::Blas),
            backendCompiled(BackendKind::Blas));
}

TEST(BackendPlumbing, UnavailableExplicitBackendThrowsKeyed) {
  if (backendAvailable(BackendKind::Blas)) {
    EXPECT_EQ(resolveBackendKind(BackendMode::Blas, linalg::SimdLevel::Scalar),
              BackendKind::Blas);
    return;
  }
  try {
    resolveBackendKind(BackendMode::Blas, linalg::SimdLevel::Scalar);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("blas"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("SLIM_WITH_BLAS"), std::string::npos);
  }
}

TEST(BackendPlumbing, DescriptorCarriesMatchingTable) {
  for (const BackendKind kind : availableBackends()) {
    const ComputeBackend be = computeBackend(kind, linalg::detectSimdLevel());
    EXPECT_EQ(be.kind, kind);
    EXPECT_STREQ(be.name, backendKindName(kind));
    ASSERT_NE(be.ops.gemm, nullptr);
    ASSERT_NE(be.ops.gemmNT, nullptr);
    ASSERT_NE(be.ops.syrk, nullptr);
    ASSERT_NE(be.ops.syrkSandwich, nullptr);
    ASSERT_NE(be.ops.gemmNTSandwich, nullptr);
  }
}

// ---------- raw kernel parity: every backend vs the scalar table ----------

Matrix randomMatrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  sim::Rng rng(seed);
  Matrix m(rows, cols);
  for (std::size_t k = 0; k < m.size(); ++k)
    m.data()[k] = rng.uniform(-1.0, 1.0);
  return m;
}

TEST(BackendKernels, PanelsMatchReferenceOnEveryBackend) {
  const int m = 13, k = 61, n = 61;
  const Matrix a = randomMatrix(m, k, 101);
  const Matrix b = randomMatrix(k, n, 103);
  const Matrix bt = randomMatrix(n, k, 107);
  const Matrix y = randomMatrix(n, k, 109);
  const auto& ref = linalg::simdKernels(linalg::SimdLevel::Scalar);
  Matrix wantGemm(m, n), wantNT(m, n), wantSyrk(n, n);
  ref.gemm(a.data(), b.data(), wantGemm.data(), m, k, n);
  ref.gemmNT(a.data(), bt.data(), wantNT.data(), m, k, n);
  ref.syrk(y.data(), wantSyrk.data(), n, k);

  for (const BackendKind kind : availableBackends()) {
    const ComputeBackend be = computeBackend(kind, linalg::detectSimdLevel());
    Matrix gotGemm(m, n), gotNT(m, n), gotSyrk(n, n);
    be.ops.gemm(a.data(), b.data(), gotGemm.data(), m, k, n);
    be.ops.gemmNT(a.data(), bt.data(), gotNT.data(), m, k, n);
    be.ops.syrk(y.data(), gotSyrk.data(), n, k);
    for (std::size_t i = 0; i < wantGemm.size(); ++i) {
      const double scale = std::max(1.0, std::fabs(wantGemm.data()[i]));
      EXPECT_NEAR(gotGemm.data()[i], wantGemm.data()[i], 1e-12 * scale)
          << be.name << " gemm element " << i;
    }
    for (std::size_t i = 0; i < wantNT.size(); ++i) {
      const double scale = std::max(1.0, std::fabs(wantNT.data()[i]));
      EXPECT_NEAR(gotNT.data()[i], wantNT.data()[i], 1e-12 * scale)
          << be.name << " gemmNT element " << i;
    }
    for (std::size_t i = 0; i < wantSyrk.size(); ++i) {
      const double scale = std::max(1.0, std::fabs(wantSyrk.data()[i]));
      EXPECT_NEAR(gotSyrk.data()[i], wantSyrk.data()[i], 1e-12 * scale)
          << be.name << " syrk element " << i;
    }
  }
}

// ---------- adaptive expm vs eigen path (reversible Q) ----------

TEST(AdaptiveExpm, MatchesEigenPathOnReversibleQ) {
  sim::Rng rng(211);
  const auto pi = sim::randomCodonFrequencies(61, 5, rng);
  Matrix s(61, 61);
  model::buildExchangeability(bio::GeneticCode::universal(), 2.0, 0.4, s);
  const expm::CodonEigenSystem es(s, pi);
  Matrix q(61, 61);
  model::buildRateMatrix(s, pi, q);

  expm::ExpmWorkspace ews;
  AdaptiveExpmWorkspace aws;
  Matrix want(61, 61), qt(61, 61), got(61, 61);
  const auto& kern = linalg::simdKernels(linalg::SimdLevel::Scalar);
  for (double t : {1e-4, 0.05, 0.7, 4.0}) {
    es.transitionMatrix(t, expm::ReconstructionPath::Syrk, linalg::Flavor::Opt,
                        ews, want);
    for (std::size_t k = 0; k < q.size(); ++k) qt.data()[k] = q.data()[k] * t;
    expmAdaptive(qt, kern, aws, got);
    for (std::size_t k = 0; k < got.size(); ++k) {
      const double scale = std::max(1.0, std::fabs(want.data()[k]));
      ASSERT_NEAR(got.data()[k], want.data()[k], 1e-12 * scale)
          << "t = " << t << " element " << k;
    }
    // Rows of a propagator are probability distributions.
    for (int i = 0; i < 61; ++i) {
      double sum = 0.0;
      for (int j = 0; j < 61; ++j) sum += got(i, j);
      EXPECT_NEAR(sum, 1.0, 1e-10) << "t = " << t << " row " << i;
    }
  }
}

// ---------- adaptive expm vs Taylor reference (non-reversible Q) ----------

/// Independent reference: scale A by 2^-s until ||A/2^s||_1 <= 0.25, sum the
/// Taylor series to convergence (no cancellation at that norm), square back.
/// Shares no Pade machinery with the implementation under test.
Matrix expmTaylorReference(const Matrix& a) {
  const std::size_t n = a.rows();
  double norm1 = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    double col = 0.0;
    for (std::size_t i = 0; i < n; ++i) col += std::fabs(a(i, j));
    norm1 = std::max(norm1, col);
  }
  int s = 0;
  while (norm1 > 0.25) {
    norm1 *= 0.5;
    ++s;
  }
  Matrix b = a;
  const double scale = std::ldexp(1.0, -s);
  for (std::size_t k = 0; k < b.size(); ++k) b.data()[k] *= scale;

  Matrix sum = Matrix::identity(n);
  Matrix term = Matrix::identity(n);
  Matrix next(n, n);
  for (int k = 1; k <= 64; ++k) {
    // term := term * b / k
    linalg::gemm(linalg::Flavor::Opt, term, b, next);
    double maxTerm = 0.0;
    for (std::size_t i = 0; i < next.size(); ++i) {
      next.data()[i] /= k;
      maxTerm = std::max(maxTerm, std::fabs(next.data()[i]));
    }
    std::swap(term, next);
    for (std::size_t i = 0; i < sum.size(); ++i)
      sum.data()[i] += term.data()[i];
    if (maxTerm < 1e-20) break;
  }
  for (int r = 0; r < s; ++r) {
    linalg::gemm(linalg::Flavor::Opt, sum, sum, next);
    std::swap(sum, next);
  }
  return sum;
}

/// Random generator matrix with no reversibility structure: independent
/// off-diagonal rates, diagonal = -row sum.
Matrix randomNonReversibleQ(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  Matrix q(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      q(i, j) = rng.uniform(0.0, 1.0);
      row += q(i, j);
    }
    q(i, i) = -row;
  }
  return q;
}

TEST(AdaptiveExpm, MatchesTaylorReferenceOnNonReversibleQ) {
  const auto& kern = linalg::simdKernels(linalg::SimdLevel::Scalar);
  AdaptiveExpmWorkspace ws;
  for (const std::uint64_t seed : {311u, 313u, 317u}) {
    const Matrix q = randomNonReversibleQ(20, seed);
    // Small, medium and large ||Qt||_1; the large one must force the
    // degree-13 branch with multiple squarings.
    for (const double t : {0.01, 0.5, 2.5}) {
      Matrix qt = q;
      for (std::size_t k = 0; k < qt.size(); ++k) qt.data()[k] *= t;
      const Matrix want = expmTaylorReference(qt);
      Matrix got(20, 20);
      const int squarings = expmAdaptive(qt, kern, ws, got);
      if (t == 2.5) EXPECT_GE(squarings, 2) << "seed " << seed;
      for (std::size_t k = 0; k < got.size(); ++k) {
        const double scale = std::max(1.0, std::fabs(want.data()[k]));
        ASSERT_NEAR(got.data()[k], want.data()[k], 1e-12 * scale)
            << "seed " << seed << " t " << t << " element " << k;
      }
    }
  }
}

TEST(AdaptiveExpm, ConvenienceOverloadAndIdentityAtZero) {
  const Matrix q = randomNonReversibleQ(7, 331);
  Matrix zero(7, 7);
  const Matrix atZero = expmAdaptive(zero);
  for (std::size_t i = 0; i < 7; ++i)
    for (std::size_t j = 0; j < 7; ++j)
      EXPECT_EQ(atZero(i, j), i == j ? 1.0 : 0.0);
  // Convenience form agrees with the explicit-kernel form bitwise (same
  // arithmetic, same scalar table).
  AdaptiveExpmWorkspace ws;
  Matrix explicitOut(7, 7);
  expmAdaptive(q, linalg::simdKernels(linalg::SimdLevel::Scalar), ws,
               explicitOut);
  EXPECT_EQ(expmAdaptive(q), explicitOut);
}

TEST(ExpmPlumbing, ParseAndNames) {
  ExpmAlgorithm a = ExpmAlgorithm::Adaptive;
  EXPECT_TRUE(parseExpmAlgorithm("eigen", a));
  EXPECT_EQ(a, ExpmAlgorithm::Eigen);
  EXPECT_TRUE(parseExpmAlgorithm("adaptive", a));
  EXPECT_EQ(a, ExpmAlgorithm::Adaptive);
  EXPECT_FALSE(parseExpmAlgorithm("pade6", a));
  EXPECT_EQ(a, ExpmAlgorithm::Adaptive);
  EXPECT_STREQ(expmAlgorithmName(ExpmAlgorithm::Eigen), "eigen");
  EXPECT_STREQ(expmAlgorithmName(ExpmAlgorithm::Adaptive), "adaptive");
}

}  // namespace
}  // namespace slim::backend

// ---------- likelihood-level contracts ----------

namespace slim::lik {
namespace {

using backend::BackendKind;
using backend::BackendMode;
using backend::ExpmAlgorithm;
using model::BranchSiteParams;
using model::Hypothesis;

struct Fixture {
  seqio::CodonAlignment alignment;
  seqio::SitePatterns patterns;
  std::vector<double> pi;
  tree::Tree tree;
};

Fixture makeFixture() {
  const sim::Dataset ds = sim::makeSweepDataset(8, /*seed=*/20260808, 40);
  Fixture f;
  f.alignment = seqio::encodeCodons(ds.alignment, bio::GeneticCode::universal());
  f.patterns = seqio::compressPatterns(f.alignment);
  f.pi = testutil::randomFrequencies(bio::GeneticCode::universal().numSense(),
                                     13);
  f.tree = ds.tree;
  return f;
}

BranchSiteParams testParams() {
  BranchSiteParams p;
  p.kappa = 2.3;
  p.omega0 = 0.15;
  p.omega2 = 2.1;
  p.p0 = 0.55;
  p.p1 = 0.30;
  return p;
}

LikelihoodOptions optionsWith(BackendMode backend, linalg::SimdMode simd,
                              int threads = 1, int blockSize = 8) {
  LikelihoodOptions o = slimOptions();
  o.backend = backend;
  o.simd = simd;
  o.numThreads = threads;
  o.blockSize = blockSize;
  return o;
}

// `backend = reference` is the engine's default scalar path, to the last
// bit: identical lnL and analytic branch gradient for every thread count
// and block size.
TEST(BackendLikelihood, ReferenceBitIdenticalToDefaultScalarPath) {
  const Fixture f = makeFixture();
  const BranchSiteParams p = testParams();
  for (const int threads : {1, 2, 8}) {
    for (const int blockSize : {0, 7, 64}) {
      BranchSiteLikelihood defaultEval(
          f.alignment, f.patterns, f.pi, f.tree, Hypothesis::H1,
          optionsWith(BackendMode::Auto, linalg::SimdMode::Scalar, threads,
                      blockSize));
      BranchSiteLikelihood refEval(
          f.alignment, f.patterns, f.pi, f.tree, Hypothesis::H1,
          optionsWith(BackendMode::Reference, linalg::SimdMode::Scalar,
                      threads, blockSize));
      EXPECT_EQ(defaultEval.backendKind(), BackendKind::Reference);
      EXPECT_EQ(refEval.backendKind(), BackendKind::Reference);
      EXPECT_EQ(refEval.logLikelihood(p), defaultEval.logLikelihood(p))
          << "threads = " << threads << " blockSize = " << blockSize;

      std::vector<double> wantGrad(defaultEval.numBranches());
      std::vector<double> gotGrad(refEval.numBranches());
      const double wantLnl = defaultEval.logLikelihoodGradientBranches(
          p, std::span<double>(wantGrad));
      const double gotLnl =
          refEval.logLikelihoodGradientBranches(p, std::span<double>(gotGrad));
      EXPECT_EQ(gotLnl, wantLnl);
      EXPECT_EQ(gotGrad, wantGrad)
          << "threads = " << threads << " blockSize = " << blockSize;
    }
  }
}

// On a vector-capable host, `backend = simd` is exactly what Auto resolves
// to — bit-identical.
TEST(BackendLikelihood, ExplicitSimdMatchesAutoBitwise) {
  if (!backend::backendAvailable(BackendKind::Simd))
    GTEST_SKIP() << "no vector SIMD level on this host";
  const Fixture f = makeFixture();
  const BranchSiteParams p = testParams();
  BranchSiteLikelihood autoEval(
      f.alignment, f.patterns, f.pi, f.tree, Hypothesis::H1,
      optionsWith(BackendMode::Auto, linalg::SimdMode::Auto));
  BranchSiteLikelihood simdEval(
      f.alignment, f.patterns, f.pi, f.tree, Hypothesis::H1,
      optionsWith(BackendMode::Simd, linalg::SimdMode::Auto));
  EXPECT_EQ(autoEval.backendKind(), BackendKind::Simd);
  EXPECT_EQ(simdEval.backendKind(), BackendKind::Simd);
  EXPECT_EQ(simdEval.logLikelihood(p), autoEval.logLikelihood(p));
}

// Every backend available in this build agrees with reference to <= 1e-10
// relative lnL on all routed propagation strategies.
TEST(BackendLikelihood, EveryAvailableBackendWithin1e10OfReference) {
  const Fixture f = makeFixture();
  const BranchSiteParams p = testParams();
  for (const auto strategy :
       {PropagationStrategy::BundledGemm, PropagationStrategy::FactoredApply,
        PropagationStrategy::PerSiteGemv}) {
    LikelihoodOptions refOpts =
        optionsWith(BackendMode::Reference, linalg::SimdMode::Scalar);
    refOpts.propagation = strategy;
    BranchSiteLikelihood refEval(f.alignment, f.patterns, f.pi, f.tree,
                                 Hypothesis::H1, refOpts);
    const double want = refEval.logLikelihood(p);
    ASSERT_TRUE(std::isfinite(want));
    for (const BackendKind kind :
         {BackendKind::Simd, BackendKind::Blas}) {
      if (!backend::backendAvailable(kind)) continue;
      LikelihoodOptions opts = optionsWith(
          kind == BackendKind::Simd ? BackendMode::Simd : BackendMode::Blas,
          linalg::SimdMode::Auto);
      opts.propagation = strategy;
      BranchSiteLikelihood eval(f.alignment, f.patterns, f.pi, f.tree,
                                Hypothesis::H1, opts);
      EXPECT_EQ(eval.backendKind(), kind);
      const double got = eval.logLikelihood(p);
      EXPECT_LE(std::fabs(got - want), 1e-10 * std::fabs(want))
          << backend::backendKindName(kind) << " "
          << propagationStrategyName(strategy);
    }
  }
}

TEST(BackendLikelihood, ExplicitUnavailableBackendFailsConstruction) {
  const Fixture f = makeFixture();
  for (const BackendKind kind : {BackendKind::Simd, BackendKind::Blas}) {
    if (backend::backendAvailable(kind)) continue;
    EXPECT_THROW(
        BranchSiteLikelihood(
            f.alignment, f.patterns, f.pi, f.tree, Hypothesis::H1,
            optionsWith(kind == BackendKind::Simd ? BackendMode::Simd
                                                  : BackendMode::Blas,
                        linalg::SimdMode::Auto)),
        std::invalid_argument);
  }
  SUCCEED();  // on fully-equipped builds the loop body never runs
}

// ---------- adaptive expm through the evaluator ----------

LikelihoodOptions adaptiveOptions(PropagationStrategy strategy,
                                  int threads = 1, int blockSize = 8) {
  LikelihoodOptions o = slimOptions();
  o.simd = linalg::SimdMode::Scalar;
  o.propagation = strategy;
  o.expm = ExpmAlgorithm::Adaptive;
  o.numThreads = threads;
  o.blockSize = blockSize;
  return o;
}

TEST(AdaptiveLikelihood, MatchesEigenPathOnBothStrategies) {
  const Fixture f = makeFixture();
  const BranchSiteParams p = testParams();
  for (const auto strategy :
       {PropagationStrategy::PerSiteGemv, PropagationStrategy::BundledGemm}) {
    LikelihoodOptions eigenOpts = adaptiveOptions(strategy);
    eigenOpts.expm = ExpmAlgorithm::Eigen;
    BranchSiteLikelihood eigenEval(f.alignment, f.patterns, f.pi, f.tree,
                                   Hypothesis::H1, eigenOpts);
    BranchSiteLikelihood adaptEval(f.alignment, f.patterns, f.pi, f.tree,
                                   Hypothesis::H1, adaptiveOptions(strategy));
    EXPECT_EQ(adaptEval.expmAlgorithm(), ExpmAlgorithm::Adaptive);
    const double want = eigenEval.logLikelihood(p);
    const double got = adaptEval.logLikelihood(p);
    ASSERT_TRUE(std::isfinite(want));
    EXPECT_LE(std::fabs(got - want), 1e-10 * std::fabs(want))
        << propagationStrategyName(strategy);

    // The analytic branch gradient (dP/dt = Q P on the adaptive path)
    // agrees with the eigen path's derivative reconstruction.
    std::vector<double> wantGrad(eigenEval.numBranches());
    std::vector<double> gotGrad(adaptEval.numBranches());
    eigenEval.logLikelihoodGradientBranches(p, std::span<double>(wantGrad));
    adaptEval.logLikelihoodGradientBranches(p, std::span<double>(gotGrad));
    for (std::size_t k = 0; k < wantGrad.size(); ++k) {
      const double scale = std::max(1.0, std::fabs(wantGrad[k]));
      EXPECT_NEAR(gotGrad[k], wantGrad[k], 1e-8 * scale)
          << propagationStrategyName(strategy) << " branch " << k;
    }
  }
}

TEST(AdaptiveLikelihood, BitIdenticalAcrossThreadsAndBlocks) {
  const Fixture f = makeFixture();
  const BranchSiteParams p = testParams();
  BranchSiteLikelihood reference(
      f.alignment, f.patterns, f.pi, f.tree, Hypothesis::H1,
      adaptiveOptions(PropagationStrategy::BundledGemm, 1, 8));
  const double want = reference.logLikelihood(p);
  ASSERT_TRUE(std::isfinite(want));
  for (const int threads : {1, 2, 8}) {
    for (const int blockSize : {0, 7, 64}) {
      BranchSiteLikelihood eval(
          f.alignment, f.patterns, f.pi, f.tree, Hypothesis::H1,
          adaptiveOptions(PropagationStrategy::BundledGemm, threads,
                          blockSize));
      EXPECT_EQ(eval.logLikelihood(p), want)
          << "threads = " << threads << " blockSize = " << blockSize;
    }
  }
}

TEST(AdaptiveLikelihood, EigenOnlyStrategiesRefuseAdaptive) {
  const Fixture f = makeFixture();
  for (const auto strategy : {PropagationStrategy::SymmetricSymv,
                              PropagationStrategy::FactoredApply}) {
    EXPECT_THROW(BranchSiteLikelihood(f.alignment, f.patterns, f.pi, f.tree,
                                      Hypothesis::H1,
                                      adaptiveOptions(strategy)),
                 std::invalid_argument);
  }
}

}  // namespace
}  // namespace slim::lik
