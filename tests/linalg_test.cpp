// Tests for the dense containers and the two-flavor BLAS kernels.
// The key invariant: Naive and Opt flavors agree to floating-point
// reassociation tolerance on every kernel, for every shape.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas1.hpp"
#include "linalg/blas2.hpp"
#include "linalg/blas3.hpp"
#include "linalg/diag.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "test_util.hpp"

namespace slim::linalg {
namespace {

using testutil::randomMatrix;
using testutil::randomSymmetric;
using testutil::randomVector;

// ---------- containers ----------

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FALSE(m.square());
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(1, 2) = -2.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), -2.0);
}

TEST(Matrix, AtThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::invalid_argument);
  EXPECT_THROW(m.at(0, 2), std::invalid_argument);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);

  const double d[] = {1.0, 2.0, 3.0};
  const Matrix dm = Matrix::diagonal({d, 3});
  EXPECT_DOUBLE_EQ(dm(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(dm(0, 1), 0.0);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::fromRows({{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, RowSpansAreContiguous) {
  Matrix m = Matrix::fromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(m.row(1), m.data() + 2);
  EXPECT_DOUBLE_EQ(m.rowSpan(1)[0], 3.0);
}

TEST(Matrix, TransposeRoundTrip) {
  const Matrix a = randomMatrix(4, 7, 11);
  const Matrix t = transposed(a);
  ASSERT_EQ(t.rows(), 7u);
  EXPECT_DOUBLE_EQ(maxAbsDiff(transposed(t), a), 0.0);

  Matrix t2(7, 4);
  transposeInto(a, t2);
  EXPECT_DOUBLE_EQ(maxAbsDiff(t, t2), 0.0);
}

TEST(Matrix, AllFinite) {
  Matrix m(2, 2, 1.0);
  EXPECT_TRUE(allFinite(m));
  m(0, 1) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(allFinite(m));
  m(0, 1) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(allFinite(m));
}

TEST(Vector, BasicsAndEquality) {
  Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  Vector w = v;
  EXPECT_EQ(v, w);
  w[0] = 9;
  EXPECT_NE(v, w);
  EXPECT_THROW(v.at(3), std::invalid_argument);
}

// ---------- BLAS-1 ----------

TEST(Blas1, DotAndAxpy) {
  Vector x{1, 2, 3}, y{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(x.span(), y.span()), 32.0);
  axpy(2.0, x.span(), y.span());
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
}

TEST(Blas1, SizeMismatchThrows) {
  Vector x(3), y(4);
  EXPECT_THROW(dot(x.span(), y.span()), std::invalid_argument);
  EXPECT_THROW(axpy(1.0, x.span(), y.span()), std::invalid_argument);
  EXPECT_THROW(copy(x.span(), y.span()), std::invalid_argument);
}

TEST(Blas1, Nrm2OverflowSafe) {
  Vector x{3e300, 4e300};
  EXPECT_NEAR(nrm2(x.span()) / 5e300, 1.0, 1e-12);
  Vector z(4, 0.0);
  EXPECT_DOUBLE_EQ(nrm2(z.span()), 0.0);
}

TEST(Blas1, AsumIamaxScal) {
  Vector x{-3, 1, 2};
  EXPECT_DOUBLE_EQ(asum(x.span()), 6.0);
  EXPECT_EQ(iamax(x.span()), 0u);
  scal(2.0, x.span());
  EXPECT_DOUBLE_EQ(x[0], -6.0);
}

TEST(Blas1, Hadamard) {
  Vector x{1, 2, 3}, y{4, 5, 6}, z(3);
  hadamard(x.span(), y.span(), z.span());
  EXPECT_DOUBLE_EQ(z[2], 18.0);
  hadamardInPlace(x.span(), y.span());
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 10.0);
}

// ---------- BLAS-2/3 flavor agreement (property sweep) ----------

class FlavorAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FlavorAgreement, Gemv) {
  const std::size_t n = GetParam();
  const Matrix a = randomMatrix(n, n + 3, 1);
  const Vector x = randomVector(n + 3, 2);
  Vector y1(n), y2(n);
  gemv(Flavor::Naive, a, x.span(), y1.span());
  gemv(Flavor::Opt, a, x.span(), y2.span());
  EXPECT_LT(maxAbsDiff(y1, y2), 1e-12 * static_cast<double>(n + 1));
}

TEST_P(FlavorAgreement, GemvT) {
  const std::size_t n = GetParam();
  const Matrix a = randomMatrix(n + 2, n, 3);
  const Vector x = randomVector(n + 2, 4);
  Vector y1(n), y2(n);
  gemvT(Flavor::Naive, a, x.span(), y1.span());
  gemvT(Flavor::Opt, a, x.span(), y2.span());
  EXPECT_LT(maxAbsDiff(y1, y2), 1e-12 * static_cast<double>(n + 1));
}

TEST_P(FlavorAgreement, SymvMatchesGemvOnSymmetricInput) {
  const std::size_t n = GetParam();
  const Matrix a = randomSymmetric(n, 5);
  const Vector x = randomVector(n, 6);
  Vector y1(n), y2(n), y3(n);
  symv(Flavor::Naive, a, x.span(), y1.span());
  symv(Flavor::Opt, a, x.span(), y2.span());
  gemv(Flavor::Opt, a, x.span(), y3.span());
  EXPECT_LT(maxAbsDiff(y1, y2), 1e-12 * static_cast<double>(n + 1));
  EXPECT_LT(maxAbsDiff(y1, y3), 1e-12 * static_cast<double>(n + 1));
}

TEST_P(FlavorAgreement, Gemm) {
  const std::size_t n = GetParam();
  const Matrix a = randomMatrix(n, n + 1, 7);
  const Matrix b = randomMatrix(n + 1, n + 2, 8);
  Matrix c1(n, n + 2), c2(n, n + 2);
  gemm(Flavor::Naive, a, b, c1);
  gemm(Flavor::Opt, a, b, c2);
  EXPECT_LT(maxAbsDiff(c1, c2), 1e-12 * static_cast<double>(n + 1));
}

TEST_P(FlavorAgreement, GemmNT) {
  const std::size_t n = GetParam();
  const Matrix a = randomMatrix(n, n + 4, 9);
  const Matrix b = randomMatrix(n + 1, n + 4, 10);
  Matrix c1(n, n + 1), c2(n, n + 1);
  gemmNT(Flavor::Naive, a, b, c1);
  gemmNT(Flavor::Opt, a, b, c2);
  EXPECT_LT(maxAbsDiff(c1, c2), 1e-12 * static_cast<double>(n + 1));

  // gemmNT(a, b) must equal gemm(a, b^T).
  Matrix c3(n, n + 1);
  gemm(Flavor::Opt, a, transposed(b), c3);
  EXPECT_LT(maxAbsDiff(c1, c3), 1e-12 * static_cast<double>(n + 1));
}

TEST_P(FlavorAgreement, Syrk) {
  const std::size_t n = GetParam();
  const Matrix y = randomMatrix(n, n + 2, 11);
  Matrix c1(n, n), c2(n, n);
  syrk(Flavor::Naive, y, c1);
  syrk(Flavor::Opt, y, c2);
  EXPECT_LT(maxAbsDiff(c1, c2), 1e-12 * static_cast<double>(n + 1));
  // Result must be exactly symmetric in the Opt flavor (mirrored).
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_DOUBLE_EQ(c2(i, j), c2(j, i));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FlavorAgreement,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16, 31, 61));

// ---------- gemv alpha/beta semantics ----------

TEST(Blas2, GemvAlphaBeta) {
  const Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
  Vector x{1, 1}, y{10, 20};
  gemv(Flavor::Opt, a, x.span(), y.span(), 2.0, 0.5);
  EXPECT_DOUBLE_EQ(y[0], 2.0 * 3.0 + 0.5 * 10.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0 * 7.0 + 0.5 * 20.0);
}

TEST(Blas2, DimensionMismatchThrows) {
  const Matrix a(3, 4);
  Vector x(3), y(3);
  EXPECT_THROW(gemv(Flavor::Opt, a, x.span(), y.span()),
               std::invalid_argument);
  const Matrix sq(3, 3);
  Vector x3(4);
  EXPECT_THROW(symv(Flavor::Opt, sq, x3.span(), y.span()),
               std::invalid_argument);
}

TEST(Blas3, AliasAndShapeChecks) {
  Matrix a(3, 3), c(3, 3);
  EXPECT_THROW(gemm(Flavor::Opt, a, a, a), std::invalid_argument);
  Matrix bad(2, 3);
  EXPECT_THROW(gemm(Flavor::Opt, a, a, bad), std::invalid_argument);
  EXPECT_THROW(syrk(Flavor::Opt, a, a), std::invalid_argument);
}

// ---------- diagonal scaling ----------

TEST(Diag, SandwichMatchesExplicitProduct) {
  const std::size_t n = 5;
  const Matrix a = randomMatrix(n, n, 21);
  const Vector l = randomVector(n, 22), r = randomVector(n, 23);
  Matrix b(n, n);
  scaleSandwich(a, l.span(), r.span(), b);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(b(i, j), l[i] * a(i, j) * r[j], 1e-15);
}

TEST(Diag, ScaleColsAndRows) {
  const Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
  const Vector d{2, 3};
  Matrix b(2, 2);
  scaleCols(a, d.span(), b);
  EXPECT_DOUBLE_EQ(b(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(b(1, 0), 6.0);
  scaleRows(d.span(), a, b);
  EXPECT_DOUBLE_EQ(b(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(b(1, 0), 9.0);
}

TEST(Diag, InPlaceAliasingWorks) {
  Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
  const Vector d{2, 3};
  scaleCols(a, d.span(), a);
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 12.0);
}

// ---------- LU ----------

TEST(Lu, SolvesKnownSystem) {
  const Matrix a = Matrix::fromRows({{2, 1}, {1, 3}});
  const Vector b{3, 5};
  const Vector x = LuFactorization(a).solve(b);
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, ResidualSmallOnRandomSystems) {
  for (unsigned seed : {1u, 2u, 3u}) {
    const std::size_t n = 20;
    const Matrix a = randomMatrix(n, n, seed);
    const Vector b = randomVector(n, seed + 100);
    const Vector x = LuFactorization(a).solve(b);
    Vector r(n);
    gemv(Flavor::Opt, a, x.span(), r.span());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(r[i], b[i], 1e-10) << "seed " << seed << " row " << i;
  }
}

TEST(Lu, MatrixRhsAndDeterminant) {
  const Matrix a = Matrix::fromRows({{4, 0}, {0, 0.25}});
  EXPECT_NEAR(LuFactorization(a).determinant(), 1.0, 1e-14);
  const Matrix x = LuFactorization(a).solve(Matrix::identity(2));
  EXPECT_NEAR(x(0, 0), 0.25, 1e-14);
  EXPECT_NEAR(x(1, 1), 4.0, 1e-14);
}

TEST(Lu, SingularThrows) {
  Matrix a(2, 2, 0.0);
  a(0, 0) = 1.0;  // second row all zero
  EXPECT_THROW(LuFactorization{a}, std::invalid_argument);
}

TEST(Lu, PermutationHandled) {
  // Requires pivoting: zero on the leading diagonal.
  const Matrix a = Matrix::fromRows({{0, 1}, {1, 0}});
  const Vector b{2, 3};
  const Vector x = LuFactorization(a).solve(b);
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
  EXPECT_NEAR(LuFactorization(a).determinant(), -1.0, 1e-14);
}

}  // namespace
}  // namespace slim::linalg
