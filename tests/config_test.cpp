// Tests for the CodeML-style control-file parser and the file-driven
// analysis entry point.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/config.hpp"

namespace slim::core {
namespace {

TEST(ConfigParse, FullFile) {
  const auto cfg = Config::parseString(R"(
      * a comment
      seqfile  = gene.fasta
      treefile = gene.nwk    * trailing comment
      outfile  = out.txt
      engine   = codeml
      CodonFreq = 3
      maxIterations = 123
      kappa = 3.5
      omega0 = 0.2
      omega2 = 4.0
      p0 = 0.5
      p1 = 0.25
      cleandata = 1
      seed = 99
  )");
  EXPECT_EQ(cfg.seqfile, "gene.fasta");
  EXPECT_EQ(cfg.treefile, "gene.nwk");
  EXPECT_EQ(cfg.outfile, "out.txt");
  EXPECT_EQ(cfg.engine, EngineKind::CodemlBaseline);
  EXPECT_EQ(cfg.fit.frequencyModel, model::CodonFrequencyModel::F61);
  EXPECT_EQ(cfg.fit.bfgs.maxIterations, 123);
  EXPECT_DOUBLE_EQ(cfg.fit.initialParams.kappa, 3.5);
  EXPECT_DOUBLE_EQ(cfg.fit.initialParams.omega0, 0.2);
  EXPECT_DOUBLE_EQ(cfg.fit.initialParams.omega2, 4.0);
  EXPECT_DOUBLE_EQ(cfg.fit.initialParams.p0, 0.5);
  EXPECT_DOUBLE_EQ(cfg.fit.initialParams.p1, 0.25);
  EXPECT_TRUE(cfg.stopCodonsAsMissing);
  EXPECT_EQ(cfg.fit.startJitterSeed, 99u);
}

TEST(ConfigParse, DefaultsApplied) {
  const auto cfg =
      Config::parseString("seqfile = a.fa\ntreefile = a.nwk\n");
  EXPECT_EQ(cfg.engine, EngineKind::Slim);
  EXPECT_EQ(cfg.fit.frequencyModel, model::CodonFrequencyModel::F3x4);
  EXPECT_TRUE(cfg.outfile.empty());
  EXPECT_FALSE(cfg.stopCodonsAsMissing);
  EXPECT_EQ(cfg.fit.tuning.gradient, GradientMode::FiniteDiff);
}

TEST(ConfigParse, GradientModes) {
  const char* base = "seqfile = s\ntreefile = t\ngradient = ";
  EXPECT_EQ(Config::parseString(std::string(base) + "fd\n")
                .fit.tuning.gradient,
            GradientMode::FiniteDiff);
  EXPECT_EQ(Config::parseString(std::string(base) + "fd-parallel\n")
                .fit.tuning.gradient,
            GradientMode::ParallelFiniteDiff);
  EXPECT_EQ(Config::parseString(std::string(base) + "analytic\n")
                .fit.tuning.gradient,
            GradientMode::Analytic);
  EXPECT_THROW(Config::parseString(std::string(base) + "newton\n"),
               std::invalid_argument);
}

TEST(ConfigParse, Errors) {
  // Missing required keys.
  EXPECT_THROW(Config::parseString("treefile = t.nwk\n"),
               std::invalid_argument);
  EXPECT_THROW(Config::parseString("seqfile = s.fa\n"),
               std::invalid_argument);
  // Unknown key.
  EXPECT_THROW(Config::parseString(
                   "seqfile = s\ntreefile = t\nbogus = 1\n"),
               std::invalid_argument);
  // Malformed lines and values.
  EXPECT_THROW(Config::parseString("seqfile\n"), std::invalid_argument);
  EXPECT_THROW(Config::parseString(
                   "seqfile = s\ntreefile = t\nkappa = abc\n"),
               std::invalid_argument);
  EXPECT_THROW(Config::parseString(
                   "seqfile = s\ntreefile = t\nCodonFreq = 7\n"),
               std::invalid_argument);
  EXPECT_THROW(Config::parseString(
                   "seqfile = s\ntreefile = t\nengine = fast\n"),
               std::invalid_argument);
  EXPECT_THROW(Config::parseString(
                   "seqfile = s\ntreefile = t\nmaxIterations = 2.5\n"),
               std::invalid_argument);
}

TEST(ConfigParse, CheckpointKeys) {
  const auto cfg = Config::parseString(
      "seqfile = s\ntreefile = t\ncheckpoint = run.ckpt\n"
      "checkpointEverySec = 2.5\n");
  EXPECT_EQ(cfg.checkpointPath, "run.ckpt");
  EXPECT_DOUBLE_EQ(cfg.checkpointEverySec, 2.5);
  EXPECT_FALSE(cfg.resume);  // --resume is a CLI flag, not a ctl key

  // Defaults: no checkpointing, 30 s throttle.
  const auto plain = Config::parseString("seqfile = s\ntreefile = t\n");
  EXPECT_TRUE(plain.checkpointPath.empty());
  EXPECT_DOUBLE_EQ(plain.checkpointEverySec, 30.0);

  // A negative throttle and a malformed one are keyed errors.
  EXPECT_THROW(Config::parseString(
                   "seqfile = s\ntreefile = t\ncheckpointEverySec = -1\n"),
               ConfigError);
  EXPECT_THROW(Config::parseString(
                   "seqfile = s\ntreefile = t\ncheckpointEverySec = soon\n"),
               ConfigError);
}

TEST(ConfigParse, SimdModes) {
  const char* base = "seqfile = s\ntreefile = t\nsimd = ";
  EXPECT_EQ(Config::parseString(std::string(base) + "auto\n").fit.tuning.simd,
            linalg::SimdMode::Auto);
  EXPECT_EQ(
      Config::parseString(std::string(base) + "scalar\n").fit.tuning.simd,
      linalg::SimdMode::Scalar);
  EXPECT_EQ(Config::parseString(std::string(base) + "avx2\n").fit.tuning.simd,
            linalg::SimdMode::Avx2);
  EXPECT_EQ(
      Config::parseString(std::string(base) + "avx512\n").fit.tuning.simd,
      linalg::SimdMode::Avx512);
  EXPECT_THROW(Config::parseString(std::string(base) + "sse2\n"), ConfigError);
  // Default when the key is absent.
  EXPECT_EQ(Config::parseString("seqfile = s\ntreefile = t\n").fit.tuning.simd,
            linalg::SimdMode::Auto);
}

// Malformed or overflowing numerics must surface as a ConfigError naming
// the key and the line — never as a bare std::out_of_range from std::stod
// or as undefined behaviour in a narrowing cast.
TEST(ConfigParse, NumericFuzzRejectsHostileValues) {
  const auto expectKeyedError = [](const std::string& line,
                                   const std::string& key) {
    const std::string text = "seqfile = s\ntreefile = t\n" + line + "\n";
    try {
      Config::parseString(text);
      FAIL() << "expected ConfigError for: " << line;
    } catch (const ConfigError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("line 3"), std::string::npos) << what;
      EXPECT_NE(what.find("'" + key + "'"), std::string::npos) << what;
    }
  };
  expectKeyedError("kappa = 1e999", "kappa");          // double overflow
  expectKeyedError("kappa = -1e999", "kappa");         // negative overflow
  expectKeyedError("kappa = nan", "kappa");            // stod parses, reject
  expectKeyedError("kappa = inf", "kappa");            // stod parses, reject
  expectKeyedError("kappa = 1.2.3", "kappa");          // trailing garbage
  expectKeyedError("kappa = --5", "kappa");            // not a number
  expectKeyedError("omega2 = 2,5", "omega2");          // locale-style comma
  expectKeyedError("p0 = 0x", "p0");                   // incomplete hex
  expectKeyedError("maxIterations = 1e12", "maxIterations");  // > int range
  expectKeyedError("maxIterations = 2.5", "maxIterations");   // fraction
  expectKeyedError("threads = 1e300", "threads");      // > int range
  expectKeyedError("seed = -3", "seed");               // negative seed
  expectKeyedError("seed = 2e19", "seed");             // >= 2^64: UB cast
  expectKeyedError("seed = 2.5", "seed");              // fractional seed
  // ConfigError still is-a std::invalid_argument for legacy catch sites.
  EXPECT_THROW(
      Config::parseString("seqfile = s\ntreefile = t\nkappa = 1e999\n"),
      std::invalid_argument);
}

TEST(ConfigParse, ErrorMentionsLineNumber) {
  try {
    Config::parseString("seqfile = s\ntreefile = t\nbogus = 1\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

class ConfigRun : public ::testing::Test {
 protected:
  std::string path(const std::string& name) {
    return testing::TempDir() + "slimcfg_" + name;
  }
  void write(const std::string& p, const std::string& text) {
    std::ofstream out(p);
    out << text;
  }
};

TEST_F(ConfigRun, EndToEnd) {
  const std::string fasta = path("gene.fasta");
  const std::string nwk = path("gene.nwk");
  const std::string out = path("out.txt");
  const std::string ctl = path("run.ctl");
  write(fasta,
        ">a\nATGGCTAAATTTCCC\n>b\nATGGCTAAATTCCCC\n"
        ">c\nATGGCAAAATTTCCG\n>d\nATGGTTAAGTTTCCA\n");
  write(nwk, "((a:0.05,b:0.05) #1:0.03,(c:0.08,d:0.12):0.02);");
  write(ctl, "seqfile = " + fasta + "\ntreefile = " + nwk +
                 "\noutfile = " + out + "\nmaxIterations = 4\n");

  const auto cfg = Config::parseFile(ctl);
  const auto test = runFromConfig(cfg);
  EXPECT_TRUE(std::isfinite(test.h0.lnL));
  EXPECT_TRUE(std::isfinite(test.h1.lnL));

  std::ifstream report(out);
  ASSERT_TRUE(report.good());
  std::string content((std::istreambuf_iterator<char>(report)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("LRT"), std::string::npos);
  std::remove(fasta.c_str());
  std::remove(nwk.c_str());
  std::remove(out.c_str());
  std::remove(ctl.c_str());
}

TEST_F(ConfigRun, PhylipInputDetected) {
  const std::string phy = path("gene.phy");
  const std::string nwk = path("gene2.nwk");
  const std::string ctl = path("run2.ctl");
  write(phy,
        "3 9\na  ATGGCTAAA\nb  ATGGCTAAG\nc  ATGGCAAAA\n");
  write(nwk, "(a:0.05,b:0.05,c:0.08 #1);");
  write(ctl, "seqfile = " + phy + "\ntreefile = " + nwk +
                 "\noutfile = -\nmaxIterations = 2\n");
  const auto test = runFromConfig(Config::parseFile(ctl));
  EXPECT_TRUE(std::isfinite(test.h1.lnL));
  std::remove(phy.c_str());
  std::remove(nwk.c_str());
  std::remove(ctl.c_str());
}

TEST(ConfigParse, ModelSelection) {
  const auto site = Config::parseString(
      "seqfile = s\ntreefile = t\nmodel = site\n");
  EXPECT_EQ(site.analysis, AnalysisKind::Site);
  const auto bs = Config::parseString(
      "seqfile = s\ntreefile = t\nmodel = branch-site\n");
  EXPECT_EQ(bs.analysis, AnalysisKind::BranchSite);
  const auto br = Config::parseString(
      "seqfile = s\ntreefile = t\nmodel = branch\n");
  EXPECT_EQ(br.analysis, AnalysisKind::Branch);
  const auto cc = Config::parseString(
      "seqfile = s\ntreefile = t\nmodel = clade-c\n");
  EXPECT_EQ(cc.analysis, AnalysisKind::CladeC);
  EXPECT_THROW(
      Config::parseString("seqfile = s\ntreefile = t\nmodel = M8\n"),
      std::invalid_argument);
  try {
    Config::parseString("seqfile = s\ntreefile = t\nmodel = M8\n");
    FAIL() << "expected keyed error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'clade-c'"), std::string::npos);
  }
}

TEST(ConfigParse, ForegroundSelector) {
  // Default: no scan.
  EXPECT_TRUE(Config::parseString("seqfile = s\ntreefile = t\n")
                  .foreground.empty());
  // Labels / node ids, comma within a set, semicolon between sets, and the
  // every-branch keyword all pass through verbatim ('#' would open a ctl
  // comment, so marks are never spelled here).
  const auto scan = Config::parseString(
      "seqfile = s\ntreefile = t\nforeground = human,chimp; gorilla\n");
  EXPECT_EQ(scan.foreground, "human,chimp; gorilla");
  const auto every = Config::parseString(
      "seqfile = s\ntreefile = t\nforeground = every-branch\n");
  EXPECT_EQ(every.foreground, "every-branch");
}

TEST_F(ConfigRun, SiteModelEndToEnd) {
  const std::string fasta = path("sgene.fasta");
  const std::string nwk = path("sgene.nwk");
  const std::string ctl = path("srun.ctl");
  write(fasta,
        ">a\nATGGCTAAATTTCCC\n>b\nATGGCTAAATTCCCC\n"
        ">c\nATGGCAAAATTTCCG\n>d\nATGGTTAAGTTTCCA\n");
  // No #1 mark required for site models.
  write(nwk, "((a:0.05,b:0.05):0.03,(c:0.08,d:0.12):0.02);");
  write(ctl, "seqfile = " + fasta + "\ntreefile = " + nwk +
                 "\nmodel = site\noutfile = -\nmaxIterations = 3\n");
  const auto cfg = Config::parseFile(ctl);
  const auto test = runSiteModelFromConfig(cfg);
  EXPECT_TRUE(std::isfinite(test.m1a.lnL));
  EXPECT_TRUE(std::isfinite(test.m2a.lnL));
  EXPECT_DOUBLE_EQ(test.lrt.df, 2.0);
  // Kind mismatch is rejected on both entry points.
  EXPECT_THROW(runFromConfig(cfg), std::invalid_argument);
  std::remove(fasta.c_str());
  std::remove(nwk.c_str());
  std::remove(ctl.c_str());
}

TEST_F(ConfigRun, MissingFilesRaise) {
  EXPECT_THROW(Config::parseFile(path("nonexistent.ctl")),
               std::invalid_argument);
  Config cfg;
  cfg.seqfile = path("missing.fa");
  cfg.treefile = path("missing.nwk");
  EXPECT_THROW(runFromConfig(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace slim::core
