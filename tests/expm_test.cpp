// Tests for the matrix-exponential pipeline — the mathematical core of the
// paper.  Every reconstruction path (Eq. 9 gemm, Eq. 10 syrk), the symmetric
// propagator (Eq. 12-13) and the factored apply are validated against each
// other, against the independent Pade oracle, and against CTMC invariants
// (stochasticity, semigroup property, equilibrium).

#include <gtest/gtest.h>

#include <cmath>

#include "expm/codon_eigen_system.hpp"
#include "expm/pade.hpp"
#include "linalg/blas2.hpp"
#include "linalg/blas3.hpp"
#include "model/branch_site.hpp"
#include "model/codon_model.hpp"
#include "test_util.hpp"

namespace slim::expm {
namespace {

using linalg::Flavor;
using linalg::Matrix;
using linalg::Vector;
using testutil::randomFrequencies;

const bio::GeneticCode& gc() { return bio::GeneticCode::universal(); }

struct CodonSetup {
  std::vector<double> pi;
  Matrix s;
  Matrix q;  // unscaled rate matrix (diagonal set)
};

CodonSetup makeCodonSetup(double kappa, double omega, unsigned seed) {
  const int n = gc().numSense();
  CodonSetup cs;
  cs.pi = randomFrequencies(n, seed);
  cs.s = Matrix(n, n);
  model::buildExchangeability(gc(), kappa, omega, cs.s);
  cs.q = Matrix(n, n);
  model::buildRateMatrix(cs.s, cs.pi, cs.q);
  return cs;
}

// ---------- Pade oracle sanity ----------

TEST(Pade, ExpOfZeroIsIdentity) {
  const Matrix e = expmPade(Matrix(4, 4, 0.0));
  EXPECT_LT(maxAbsDiff(e, Matrix::identity(4)), 1e-14);
}

TEST(Pade, ExpOfDiagonal) {
  const double d[] = {1.0, -2.0, 0.5};
  const Matrix e = expmPade(Matrix::diagonal({d, 3}));
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-12);
  EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(e(2, 2), std::exp(0.5), 1e-12);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-13);
}

TEST(Pade, KnownNilpotent) {
  // A = [[0,1],[0,0]] -> e^A = [[1,1],[0,1]].
  const Matrix e = expmPade(Matrix::fromRows({{0, 1}, {0, 0}}));
  EXPECT_NEAR(e(0, 0), 1.0, 1e-14);
  EXPECT_NEAR(e(0, 1), 1.0, 1e-14);
  EXPECT_NEAR(e(1, 0), 0.0, 1e-14);
}

TEST(Pade, LargeNormTriggersScaling) {
  // 2x2 rotation generator scaled up: e^{tJ} = rotation by t.
  const double t = 20.0;
  const Matrix e = expmPade(Matrix::fromRows({{0, -t}, {t, 0}}));
  EXPECT_NEAR(e(0, 0), std::cos(t), 1e-9);
  EXPECT_NEAR(e(1, 0), std::sin(t), 1e-9);
}

// ---------- eigendecomposition pipeline vs the oracle ----------

class ExpmPath : public ::testing::TestWithParam<
                     std::tuple<ReconstructionPath, Flavor, double>> {};

TEST_P(ExpmPath, MatchesPadeOracle) {
  const auto [path, flavor, t] = GetParam();
  const auto cs = makeCodonSetup(2.0, 0.5, 11);
  const CodonEigenSystem es(cs.s, cs.pi);

  Matrix qt = cs.q;
  for (std::size_t k = 0; k < qt.size(); ++k) qt.data()[k] *= t;
  const Matrix ref = expmPade(qt);

  ExpmWorkspace ws;
  Matrix p(es.n(), es.n());
  es.transitionMatrix(t, path, flavor, ws, p);
  EXPECT_LT(maxAbsDiff(p, ref), 1e-10)
      << reconstructionPathName(path) << " flavor=" << flavorName(flavor)
      << " t=" << t;
}

INSTANTIATE_TEST_SUITE_P(
    PathsFlavorsTimes, ExpmPath,
    ::testing::Combine(::testing::Values(ReconstructionPath::Gemm,
                                         ReconstructionPath::Syrk),
                       ::testing::Values(Flavor::Naive, Flavor::Opt),
                       ::testing::Values(0.01, 0.1, 0.5, 2.0)));

// ---------- CTMC invariants ----------

TEST(CodonEigenSystem, TransitionAtZeroIsIdentity) {
  const auto cs = makeCodonSetup(2.0, 0.3, 5);
  const CodonEigenSystem es(cs.s, cs.pi);
  ExpmWorkspace ws;
  Matrix p(es.n(), es.n());
  es.transitionMatrix(0.0, ReconstructionPath::Syrk, Flavor::Opt, ws, p);
  EXPECT_LT(maxAbsDiff(p, Matrix::identity(es.n())), 1e-11);
}

TEST(CodonEigenSystem, RowsAreStochastic) {
  const auto cs = makeCodonSetup(3.0, 1.5, 6);
  const CodonEigenSystem es(cs.s, cs.pi);
  ExpmWorkspace ws;
  Matrix p(es.n(), es.n());
  for (double t : {0.05, 0.3, 1.0, 5.0}) {
    es.transitionMatrix(t, ReconstructionPath::Syrk, Flavor::Opt, ws, p);
    for (std::size_t i = 0; i < p.rows(); ++i) {
      double rowSum = 0;
      for (std::size_t j = 0; j < p.cols(); ++j) {
        EXPECT_GE(p(i, j), 0.0);
        rowSum += p(i, j);
      }
      EXPECT_NEAR(rowSum, 1.0, 1e-10) << "t=" << t << " row " << i;
    }
  }
}

TEST(CodonEigenSystem, SemigroupProperty) {
  // P(t+s) = P(t) P(s).
  const auto cs = makeCodonSetup(2.5, 0.2, 7);
  const CodonEigenSystem es(cs.s, cs.pi);
  ExpmWorkspace ws;
  const std::size_t n = es.n();
  Matrix pt(n, n), ps(n, n), pts(n, n), prod(n, n);
  es.transitionMatrix(0.2, ReconstructionPath::Syrk, Flavor::Opt, ws, pt);
  es.transitionMatrix(0.5, ReconstructionPath::Syrk, Flavor::Opt, ws, ps);
  es.transitionMatrix(0.7, ReconstructionPath::Syrk, Flavor::Opt, ws, pts);
  linalg::gemm(Flavor::Opt, pt, ps, prod);
  EXPECT_LT(maxAbsDiff(prod, pts), 1e-11);
}

TEST(CodonEigenSystem, EquilibriumIsStationary) {
  // pi^T P(t) = pi^T.
  const auto cs = makeCodonSetup(2.0, 0.8, 8);
  const CodonEigenSystem es(cs.s, cs.pi);
  ExpmWorkspace ws;
  Matrix p(es.n(), es.n());
  es.transitionMatrix(0.7, ReconstructionPath::Syrk, Flavor::Opt, ws, p);
  Vector piV(es.n()), out(es.n());
  for (std::size_t i = 0; i < es.n(); ++i) piV[i] = cs.pi[i];
  linalg::gemvT(Flavor::Opt, p, piV.span(), out.span());
  EXPECT_LT(maxAbsDiff(out, piV), 1e-11);
}

TEST(CodonEigenSystem, LongTimeLimitIsEquilibrium) {
  // Every row of P(t -> inf) converges to pi.
  const auto cs = makeCodonSetup(2.0, 0.5, 9);
  const CodonEigenSystem es(cs.s, cs.pi);
  ExpmWorkspace ws;
  Matrix p(es.n(), es.n());
  es.transitionMatrix(500.0, ReconstructionPath::Syrk, Flavor::Opt, ws, p);
  // Tolerance reflects eigenvector roundoff amplified by Pi^{-1/2} at the
  // rank-one limit; the Pade cross-check above is tighter at realistic t.
  for (std::size_t i = 0; i < es.n(); ++i)
    for (std::size_t j = 0; j < es.n(); ++j)
      EXPECT_NEAR(p(i, j), cs.pi[j], 5e-7);
}

TEST(CodonEigenSystem, EigenvaluesNonPositiveWithOneZero) {
  const auto cs = makeCodonSetup(2.0, 0.5, 10);
  const CodonEigenSystem es(cs.s, cs.pi);
  const auto& lambda = es.eigenvalues();
  for (std::size_t i = 0; i < lambda.size(); ++i)
    EXPECT_LE(lambda[i], 1e-10);
  EXPECT_NEAR(lambda[lambda.size() - 1], 0.0, 1e-10);
}

TEST(CodonEigenSystem, DetailedBalanceOfP) {
  // Reversibility survives exponentiation: pi_i P_ij(t) == pi_j P_ji(t).
  const auto cs = makeCodonSetup(1.7, 0.4, 12);
  const CodonEigenSystem es(cs.s, cs.pi);
  ExpmWorkspace ws;
  Matrix p(es.n(), es.n());
  es.transitionMatrix(0.4, ReconstructionPath::Syrk, Flavor::Opt, ws, p);
  for (std::size_t i = 0; i < es.n(); ++i)
    for (std::size_t j = i + 1; j < es.n(); ++j)
      EXPECT_NEAR(cs.pi[i] * p(i, j), cs.pi[j] * p(j, i), 1e-12);
}

// ---------- Eq. 12-13: symmetric propagator and factored apply ----------

TEST(SymmetricPropagator, EquivalentToTransitionMatrix) {
  const auto cs = makeCodonSetup(2.0, 2.5, 13);
  const CodonEigenSystem es(cs.s, cs.pi);
  ExpmWorkspace ws;
  const std::size_t n = es.n();
  const double t = 0.3;

  Matrix p(n, n), m(n, n);
  es.transitionMatrix(t, ReconstructionPath::Syrk, Flavor::Opt, ws, p);
  es.symmetricPropagator(t, Flavor::Opt, ws, m);

  // M must be symmetric.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_DOUBLE_EQ(m(i, j), m(j, i));

  // M (Pi w) == P w for random w.
  const Vector w = testutil::randomVector(n, 14);
  Vector piw(n), viaM(n), viaP(n);
  for (std::size_t i = 0; i < n; ++i) piw[i] = cs.pi[i] * w[i];
  linalg::symv(Flavor::Opt, m, piw.span(), viaM.span());
  linalg::gemv(Flavor::Opt, p, w.span(), viaP.span());
  EXPECT_LT(maxAbsDiff(viaM, viaP), 1e-11);
}

TEST(FactoredApply, MatchesTransitionMatrixOnBundles) {
  const auto cs = makeCodonSetup(2.0, 0.1, 15);
  const CodonEigenSystem es(cs.s, cs.pi);
  ExpmWorkspace ws;
  const std::size_t n = es.n();
  const double t = 0.25;

  Matrix p(n, n);
  es.transitionMatrix(t, ReconstructionPath::Syrk, Flavor::Opt, ws, p);

  for (std::size_t cols : {1u, 3u, 17u}) {
    Matrix w(n, cols);
    for (std::size_t k = 0; k < w.size(); ++k)
      w.data()[k] = 0.5 + 0.5 * std::sin(static_cast<double>(k));
    Matrix viaApply(n, cols), viaP(n, cols);
    es.applyExp(t, w, Flavor::Opt, ws, viaApply);
    linalg::gemm(Flavor::Opt, p, w, viaP);
    EXPECT_LT(maxAbsDiff(viaApply, viaP), 1e-11) << "cols=" << cols;
  }
}

TEST(MakeYhat, FactorsReproduceP) {
  // Pi^{1/2} Yhat Yhat^T Pi^{1/2} == Z == Pi^{1/2} P Pi^{-1/2}... verified
  // via P = Yhat Yhat^T Pi directly.
  const auto cs = makeCodonSetup(2.2, 0.6, 16);
  const CodonEigenSystem es(cs.s, cs.pi);
  const std::size_t n = es.n();
  const double t = 0.15;
  Matrix yhat(n, n), m(n, n), p(n, n);
  es.makeYhat(t, yhat);
  linalg::syrk(Flavor::Opt, yhat, m);
  // P_ij = M_ij pi_j.
  ExpmWorkspace ws;
  Matrix pRef(n, n);
  es.transitionMatrix(t, ReconstructionPath::Syrk, Flavor::Opt, ws, pRef);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(m(i, j) * cs.pi[j], pRef(i, j), 1e-11);
}

// ---------- input validation ----------

TEST(CodonEigenSystem, RejectsBadInput) {
  const auto cs = makeCodonSetup(2.0, 0.5, 17);
  std::vector<double> badPi(61, 1.0 / 61.0);
  badPi[0] = 0.0;
  EXPECT_THROW(CodonEigenSystem(cs.s, badPi), std::invalid_argument);
  EXPECT_THROW(CodonEigenSystem(cs.s, std::vector<double>(60, 1.0 / 60)),
               std::invalid_argument);

  const CodonEigenSystem es(cs.s, cs.pi);
  ExpmWorkspace ws;
  Matrix p(61, 61);
  EXPECT_THROW(
      es.transitionMatrix(-0.1, ReconstructionPath::Syrk, Flavor::Opt, ws, p),
      std::invalid_argument);
  Matrix bad(60, 60);
  EXPECT_THROW(
      es.transitionMatrix(0.1, ReconstructionPath::Syrk, Flavor::Opt, ws, bad),
      std::invalid_argument);
}

TEST(CodonEigenSystem, WorksForNon61Dimensions) {
  // Vertebrate mitochondrial code: 60 sense codons.
  const auto& mito = bio::GeneticCode::vertebrateMitochondrial();
  const int n = mito.numSense();
  const auto pi = randomFrequencies(n, 18);
  Matrix s(n, n);
  model::buildExchangeability(mito, 2.0, 0.5, s);
  const CodonEigenSystem es(s, pi);
  ExpmWorkspace ws;
  Matrix p(n, n);
  es.transitionMatrix(0.2, ReconstructionPath::Syrk, Flavor::Opt, ws, p);
  for (int i = 0; i < n; ++i) {
    double rowSum = 0;
    for (int j = 0; j < n; ++j) rowSum += p(i, j);
    EXPECT_NEAR(rowSum, 1.0, 1e-10);
  }
}

}  // namespace
}  // namespace slim::expm
