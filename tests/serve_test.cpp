// Tests for the analysis daemon stack: the strict JSON parser, the
// slimcodeml-serve-v1 protocol, cooperative cancellation in both optimizers,
// and the AnalysisServer end to end — daemon results bit-identical
// (EXPECT_EQ) to CLI runs of the same control file, warm context reuse
// across jobs, admission control and malformed-request handling (keyed
// errors, never UB), cancellation of queued and running jobs, deadline
// enforcement, and kill -9 + restart recovery of checkpointed jobs.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/config.hpp"
#include "core/report.hpp"
#include "opt/bfgs.hpp"
#include "opt/cancel.hpp"
#include "opt/nelder_mead.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/build_info.hpp"
#include "support/json.hpp"
#include "support/json_parse.hpp"

namespace slim::serve {
namespace {

namespace fs = std::filesystem;
using support::JsonError;
using support::JsonValue;
using support::parseJson;

/// Fresh per-test scratch directory (removed on destruction).
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::path(::testing::TempDir()) /
             ("slim_serve_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

/// The 5-species primate gene + #1-marked tree used across integration-level
/// tests; small enough that a full H0/H1 fit runs in milliseconds.
void writeGene(const TempDir& dir, const std::string& stem) {
  std::ofstream fasta(dir.file(stem + ".fasta"));
  fasta << ">human\nATGGCTAAATTTCCCGGGACTTGCGGAGAT\n"
           ">chimp\nATGGCTAAATTCCCCGGGACTTGCGGAGAT\n"
           ">gorilla\nATGGCAAAATTTCCCGGAACTTGTGGAGAC\n"
           ">orangutan\nATGGCTAAGTTTCCAGGGACATGCGGTGAT\n"
           ">macaque\nATGGCGAAGTTTCCAGGAACATGTGGTGAC\n";
  std::ofstream nwk(dir.file(stem + ".nwk"));
  nwk << "(((human:0.02,chimp:0.02) #1:0.015,gorilla:0.04):0.02,"
         "(orangutan:0.08,macaque:0.10):0.03);\n";
}

/// Control file for `repeats` copies of one gene.  threads = 1 keeps every
/// run on one deterministic schedule (batch == sequential is an invariant
/// anyway; this just removes wall-clock noise from tiny fixtures).
std::string makeCtl(const TempDir& dir, const std::string& stem,
                    int maxIterations, int repeats = 1,
                    const std::string& extra = {}) {
  std::string ctl;
  for (int r = 0; r < repeats; ++r)
    ctl += "seqfile = " + dir.file(stem + ".fasta") + "\n";
  ctl += "treefile = " + dir.file(stem + ".nwk") + "\n";
  ctl += "threads = 1\n";
  ctl += "maxIterations = " + std::to_string(maxIterations) + "\n";
  ctl += extra;
  return ctl;
}

/// What `slimcodeml --json` would emit for this control file, as parsed
/// JSON.  Runs the same core entry points the CLI binary calls.
JsonValue cliReport(const std::string& ctl, const TempDir& dir) {
  core::Config config = core::Config::parseString(ctl);
  config.outfile = dir.file("cli_baseline.txt");
  std::ostringstream os;
  if (config.seqfiles.size() == 1) {
    const auto test = core::runFromConfig(config);
    core::writeJsonTestReport(os, test, config.engine);
  } else {
    const auto out = core::runBatchFromConfig(config);
    core::writeJsonBatchReport(os, out.tests, out.geneNames, config.engine,
                               out.totals, out.info);
  }
  return parseJson(os.str());
}

/// Deep copy with the named object keys removed at every level — used to
/// compare reports modulo fields that legitimately differ (wall-clock, and
/// where stated, counters / resume provenance).
JsonValue strip(const JsonValue& v, const std::set<std::string>& skip) {
  if (v.isObject()) {
    JsonValue::Object out;
    for (const auto& [key, value] : v.asObject())
      if (skip.find(key) == skip.end()) out.emplace_back(key, strip(value, skip));
    return JsonValue::makeObject(std::move(out));
  }
  if (v.isArray()) {
    JsonValue::Array out;
    for (const auto& item : v.asArray()) out.push_back(strip(item, skip));
    return JsonValue::makeArray(std::move(out));
  }
  return v;
}

std::string dump(const JsonValue& v) {
  std::ostringstream os;
  support::writeJson(os, v);
  return os.str();
}

/// Wall-clock fields differ between any two runs; everything else must not.
const std::set<std::string> kClockOnly = {"seconds", "totalSeconds"};
/// Plus engine counters: a warm cache changes *which* work is done (hits vs
/// builds), never any result bit.
const std::set<std::string> kClockAndCounters = {"seconds", "totalSeconds",
                                                 "counters", "totals",
                                                 "batch"};
/// Plus resume provenance, for runs recovered from a checkpoint.
const std::set<std::string> kClockCountersResume = {
    "seconds",     "totalSeconds",      "counters", "totals",
    "batch",       "resumedFrom",       "iterationsReplayed"};

// ---------- request builders ----------

std::string jsonEscaped(const std::string& s) {
  std::ostringstream os;
  support::jsonString(os, s);
  return os.str();
}

std::string submitRequest(const std::string& ctl, const std::string& extra = {}) {
  std::string r = "{\"schema\":\"" + std::string(kServeSchema) +
                  "\",\"op\":\"submit\",\"ctl\":" + jsonEscaped(ctl);
  r += extra;
  r += "}";
  return r;
}

std::string idRequest(const char* op, const std::string& id,
                      const std::string& extra = {}) {
  return "{\"schema\":\"" + std::string(kServeSchema) + "\",\"op\":\"" + op +
         "\",\"id\":" + jsonEscaped(id) + extra + "}";
}

bool isOk(const JsonValue& response) {
  const JsonValue* ok = response.find("ok");
  return ok != nullptr && ok->isBool() && ok->asBool();
}

std::string errorOf(const JsonValue& response) {
  const JsonValue* e = response.find("error");
  return e != nullptr && e->isString() ? e->asString() : std::string();
}

/// Submit and block for the finished report; fails the test on any error.
JsonValue submitAndWait(Client& client, const std::string& ctl,
                        const std::string& extra = {}) {
  const JsonValue submitted = client.call(submitRequest(ctl, extra));
  EXPECT_TRUE(isOk(submitted)) << errorOf(submitted);
  const std::string id = submitted.at("id").asString();
  const JsonValue result =
      client.call(idRequest("result", id, ",\"wait\":true"));
  EXPECT_TRUE(isOk(result)) << errorOf(result);
  return result.at("report");
}

std::string jobState(Client& client, const std::string& id) {
  const JsonValue status = client.call(idRequest("status", id));
  EXPECT_TRUE(isOk(status)) << errorOf(status);
  return status.at("job").at("state").asString();
}

void waitForState(Client& client, const std::string& id,
                  const std::string& want) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    if (jobState(client, id) == want) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  FAIL() << "job " << id << " never reached state " << want;
}

// ---------- JSON parser ----------

TEST(JsonParse, RoundTripsScalarsAndStructure) {
  const std::string text =
      "{\"a\":1,\"b\":-2.5,\"c\":1e-3,\"d\":true,\"e\":false,\"f\":null,"
      "\"g\":\"hi\\n\\\"there\\\"\",\"h\":[1,2,[3]],\"i\":{}}";
  const JsonValue v = parseJson(text);
  EXPECT_EQ(v.at("a").asNumber(), 1.0);
  EXPECT_EQ(v.at("b").asNumber(), -2.5);
  EXPECT_EQ(v.at("c").asNumber(), 1e-3);
  EXPECT_TRUE(v.at("d").asBool());
  EXPECT_FALSE(v.at("e").asBool());
  EXPECT_TRUE(v.at("f").isNull());
  EXPECT_EQ(v.at("g").asString(), "hi\n\"there\"");
  EXPECT_EQ(v.at("h").asArray().size(), 3u);
  EXPECT_EQ(v.at("h").asArray()[2].asArray()[0].asNumber(), 3.0);
  EXPECT_TRUE(v.at("i").isObject());
  // parse -> write -> parse is a fixed point.
  EXPECT_EQ(parseJson(dump(v)), v);
}

TEST(JsonParse, NumbersRoundTripBitExactly) {
  // The wire format for results reuses jsonNumber (max_digits10), so any
  // double the report writers emit must survive parseJson bit for bit.
  for (const double value :
       {0.1, -1.0 / 3.0, 1e-300, -2.2250738585072014e-308, 12345.6789,
        5e-324, 9007199254740993.0}) {
    std::ostringstream os;
    support::jsonNumber(os, value);
    const double back = parseJson(os.str()).asNumber();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back),
              std::bit_cast<std::uint64_t>(value))
        << os.str();
  }
}

TEST(JsonParse, UnicodeEscapesAndSurrogatePairs) {
  EXPECT_EQ(parseJson("\"\\u0041\"").asString(), "A");
  EXPECT_EQ(parseJson("\"\\u00e9\"").asString(), "\xc3\xa9");      // é
  EXPECT_EQ(parseJson("\"\\u20ac\"").asString(), "\xe2\x82\xac");  // €
  EXPECT_EQ(parseJson("\"\\ud83d\\ude00\"").asString(),
            "\xf0\x9f\x98\x80");  // emoji via surrogate pair
  EXPECT_THROW(parseJson("\"\\ud800\""), JsonError);       // lone high
  EXPECT_THROW(parseJson("\"\\ude00\""), JsonError);       // lone low
  EXPECT_THROW(parseJson("\"\\ud800\\u0041\""), JsonError);  // bad pair
}

TEST(JsonParse, RejectsMalformedInput) {
  const char* bad[] = {
      "",         "   ",       "{",       "}",          "[",
      "[1,]",     "{\"a\":}",  "{\"a\"}", "{\"a\":1,}", "{1:2}",
      "nul",      "tru",       "falsey",  "01",         "1.",
      ".5",       "+1",        "1e",      "0x10",       "-",
      "1 2",      "{}{}",      "\"abc",   "\"\\x\"",    "\"\t\"",
      "{\"a\":1}extra",         "[1] [2]", "'single'",   "1e999",
      "{\"dup\":1,\"dup\":2}",
  };
  for (const char* text : bad)
    EXPECT_THROW(parseJson(text), JsonError) << "input: " << text;

  // Offsets are reported in bytes so a client can locate the defect.
  try {
    parseJson("{\"a\":01}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }

  // Depth cap: hostile nesting must throw, not overflow the stack.
  std::string bomb(10000, '[');
  EXPECT_THROW(parseJson(bomb), JsonError);
  std::string closed = std::string(100, '[') + std::string(100, ']');
  EXPECT_THROW(parseJson(closed), JsonError);  // > kMaxJsonDepth
  std::string okDepth = std::string(20, '[') + std::string(20, ']');
  EXPECT_TRUE(parseJson(okDepth).isArray());
}

TEST(JsonParse, EveryTruncationOfAValidRequestFails) {
  // A strict prefix of a JSON object is never a valid document, so a
  // connection dropped mid-request can only produce a keyed parse error.
  const std::string request = submitRequest(
      "seqfile = g.fasta\ntreefile = g.nwk\n", ",\"priority\":3");
  ASSERT_TRUE(parseJson(request).isObject());
  for (std::size_t n = 0; n < request.size(); ++n)
    EXPECT_THROW(parseJson(request.substr(0, n)), JsonError) << "length " << n;
}

// ---------- protocol ----------

TEST(Protocol, ParsesSubmitRequest) {
  const Request req = parseRequest(submitRequest(
      "seqfile = a\n", ",\"priority\":-7,\"timeoutSec\":1.5,"
                       "\"checkpoint\":true"));
  EXPECT_EQ(req.op, Op::Submit);
  EXPECT_EQ(req.ctl, "seqfile = a\n");
  EXPECT_EQ(req.priority, -7);
  EXPECT_EQ(req.timeoutSec, 1.5);
  EXPECT_TRUE(req.checkpoint);
  EXPECT_EQ(parseRequest("{\"op\":\"ping\"}").op, Op::Ping);  // schema optional
}

TEST(Protocol, KeyedErrors) {
  const auto errorContains = [](const std::string& line,
                                const std::string& needle) {
    try {
      parseRequest(line);
      ADD_FAILURE() << "expected ProtocolError for: " << line;
    } catch (const std::exception& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "error '" << e.what() << "' for " << line;
    }
  };
  errorContains("[1]", "object");
  errorContains("{\"op\":\"launch\"}", "unknown op");
  errorContains("{\"op\":\"submit\",\"ctl\":\"x\",\"priorty\":1}", "priorty");
  errorContains("{\"op\":\"ping\",\"id\":\"x\"}", "accepts no field");
  errorContains("{\"op\":\"submit\"}", "requires field \"ctl\"");
  errorContains("{\"op\":\"result\"}", "requires field \"id\"");
  errorContains("{\"op\":\"cancel\",\"id\":\"\"}", "must not be empty");
  errorContains("{\"op\":\"submit\",\"ctl\":\"x\",\"priority\":1000}",
                "priority");
  errorContains("{\"op\":\"submit\",\"ctl\":\"x\",\"priority\":1.5}",
                "integer");
  errorContains("{\"op\":\"submit\",\"ctl\":\"x\",\"timeoutSec\":-1}",
                "timeoutSec");
  errorContains("{\"schema\":\"other-v9\",\"op\":\"ping\"}", "schema");
}

// ---------- build info ----------

TEST(BuildInfo, CarriesSchemaVersions) {
  const support::BuildInfo info = support::buildInfo();
  EXPECT_FALSE(info.gitDescribe.empty());
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_FALSE(info.simd.empty());
  bool serveSchema = false;
  for (const auto& s : info.schemas)
    serveSchema |= s.name == "serve" && s.version == kServeSchema;
  EXPECT_TRUE(serveSchema);
  EXPECT_NE(support::buildInfoLine().find("slimcodeml "), std::string::npos);
  const JsonValue parsed = parseJson(support::buildInfoJson());
  EXPECT_EQ(parsed.at("schemas").at("serve").asString(), kServeSchema);
}

// ---------- cooperative cancellation in the optimizers ----------

TEST(CancelPredicate, BfgsStopsAtLastAcceptedPoint) {
  const opt::Objective rosenbrock = [](std::span<const double> x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  const std::vector<double> x0 = {-1.2, 1.0};

  // Uncancelled reference run, capturing the per-iteration snapshots.
  opt::CallableObjective full(rosenbrock);
  std::vector<opt::BfgsState> states;
  const auto reference = opt::minimizeBfgs(
      full, x0, {}, [&](const opt::BfgsState& st) { states.push_back(st); });
  ASSERT_FALSE(reference.cancelled);
  ASSERT_GT(reference.iterations, 5);

  // The predicate is polled once before the first gradient, then at the top
  // of every iteration; this cancels at the top of iteration 3.
  int polls = 0;
  opt::BfgsOptions options;
  options.cancel = [&polls] { return ++polls > 4; };
  opt::CallableObjective cut(rosenbrock);
  const auto cancelled = opt::minimizeBfgs(cut, x0, options);
  EXPECT_TRUE(cancelled.cancelled);
  EXPECT_FALSE(cancelled.converged);
  EXPECT_EQ(cancelled.message, "cancelled");
  EXPECT_EQ(cancelled.iterations, 3);

  // The result is the last *accepted* point: bit-identical to the reference
  // trajectory after 3 iterations.
  const opt::BfgsState* at3 = nullptr;
  for (const auto& st : states)
    if (st.iterations == 3) at3 = &st;
  ASSERT_NE(at3, nullptr);
  ASSERT_EQ(cancelled.x.size(), at3->x.size());
  for (std::size_t i = 0; i < at3->x.size(); ++i)
    EXPECT_EQ(cancelled.x[i], at3->x[i]);
  EXPECT_EQ(cancelled.value, at3->value);

  // An already-cancelled fit stops after the mandatory initial evaluation.
  opt::BfgsOptions immediate;
  immediate.cancel = [] { return true; };
  const auto stopped = opt::minimizeBfgs(rosenbrock, x0, immediate);
  EXPECT_TRUE(stopped.cancelled);
  EXPECT_EQ(stopped.iterations, 0);
  EXPECT_EQ(stopped.functionEvaluations, 1);
  EXPECT_EQ(stopped.gradientEvaluations, 0);
}

TEST(CancelPredicate, NelderMeadStopsCleanly) {
  const opt::Objective sphere = [](std::span<const double> x) {
    return x[0] * x[0] + x[1] * x[1];
  };
  const std::vector<double> x0 = {2.0, -3.0};

  opt::NelderMeadOptions options;
  int polls = 0;
  options.cancel = [&polls] { return ++polls > 5; };
  const auto cancelled = opt::minimizeNelderMead(sphere, x0, options);
  EXPECT_TRUE(cancelled.cancelled);
  EXPECT_FALSE(cancelled.converged);
  EXPECT_EQ(cancelled.message, "cancelled");
  EXPECT_GT(cancelled.iterations, 0);
  // The best simplex vertex at the stop is still a real evaluated point.
  EXPECT_TRUE(std::isfinite(cancelled.value));
  EXPECT_LE(cancelled.value, sphere(x0));

  const auto reference = opt::minimizeNelderMead(sphere, x0);
  EXPECT_FALSE(reference.cancelled);
  EXPECT_TRUE(reference.converged);
}

TEST(CancelPredicate, TimeoutSecCtlKeyCancelsRun) {
  const TempDir dir("timeout");
  writeGene(dir, "gene");
  // A nanoscopic budget: the first deadline poll already trips, every fit
  // stops at its first boundary, and the run still produces a full report
  // with the interrupted fits marked.
  const std::string ctl =
      makeCtl(dir, "gene", 200, 1, "timeoutSec = 0.000001\n");
  core::Config config = core::Config::parseString(ctl);
  EXPECT_EQ(config.timeoutSec, 0.000001);
  config.outfile = dir.file("report.txt");
  const auto test = core::runFromConfig(config);
  EXPECT_TRUE(test.h0.cancelled);
  EXPECT_TRUE(test.h1.cancelled);
  EXPECT_EQ(test.h0.message, "cancelled");
  ASSERT_TRUE(fs::exists(dir.file("report.txt")));
  std::ifstream in(dir.file("report.txt"));
  std::ostringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("cancelled"), std::string::npos);
  std::ostringstream json;
  core::writeJsonTestReport(json, test, config.engine);
  EXPECT_NE(json.str().find("\"cancelled\":true"), std::string::npos);

  // timeoutSec must not leak into the checkpoint identity: cancellation
  // truncates trajectories, it never alters them.
  core::Config woTimeout = core::Config::parseString(makeCtl(dir, "gene", 200));
  EXPECT_EQ(core::checkpointConfigHash(config),
            core::checkpointConfigHash(woTimeout));

  EXPECT_THROW(core::Config::parseString("timeoutSec = -1\n"),
               core::ConfigError);
}

// ---------- server end to end ----------

TEST(Server, PingStatusAndVersion) {
  const TempDir dir("ping");
  ServerOptions options;
  options.socketPath = dir.file("d.sock");
  AnalysisServer server(std::move(options));
  server.start();

  Client client(dir.file("d.sock"));
  const JsonValue pong = client.call("{\"op\":\"ping\"}");
  EXPECT_TRUE(isOk(pong));
  EXPECT_EQ(pong.at("schema").asString(), kServeSchema);

  const JsonValue status = client.call("{\"op\":\"status\"}");
  ASSERT_TRUE(isOk(status));
  const JsonValue& info = status.at("server");
  EXPECT_FALSE(info.at("draining").asBool());
  EXPECT_EQ(info.at("workers").asNumber(), 2.0);
  EXPECT_EQ(info.at("jobs").at("queued").asNumber(), 0.0);
  EXPECT_EQ(info.at("jobs").at("running").asNumber(), 0.0);
  EXPECT_EQ(info.at("version").at("schemas").at("serve").asString(),
            kServeSchema);
  EXPECT_FALSE(info.at("version").at("compiler").asString().empty());

  EXPECT_EQ(errorOf(client.call(idRequest("status", "job-99"))),
            "unknown job id \"job-99\"");
  server.drainAndStop();
}

TEST(Server, RefusesSecondDaemonOnLiveSocket) {
  const TempDir dir("livesock");
  ServerOptions options;
  options.socketPath = dir.file("d.sock");
  AnalysisServer server(std::move(options));
  server.start();
  ServerOptions second;
  second.socketPath = dir.file("d.sock");
  EXPECT_THROW(AnalysisServer another(std::move(second)), std::runtime_error);
  // The live daemon must still answer (the probe must not unlink its socket).
  Client client(dir.file("d.sock"));
  EXPECT_TRUE(isOk(client.call("{\"op\":\"ping\"}")));
  server.drainAndStop();
}

TEST(Server, DaemonReportMatchesCliByteForByte) {
  const TempDir dir("identity");
  writeGene(dir, "gene");
  const std::string ctl = makeCtl(dir, "gene", 8);
  const JsonValue baseline = cliReport(ctl, dir);

  ServerOptions options;
  options.socketPath = dir.file("d.sock");
  options.workers = 1;
  AnalysisServer server(std::move(options));
  server.start();
  Client client(dir.file("d.sock"));
  const JsonValue report = submitAndWait(client, ctl);

  // First job on a cold daemon: even the engine counters match the CLI run
  // exactly — only wall-clock may differ.
  EXPECT_EQ(strip(report, kClockOnly), strip(baseline, kClockOnly))
      << dump(report);

  // Multi-gene: batch report against the CLI batch runner.
  const std::string batchCtl = makeCtl(dir, "gene", 5, 3);
  const JsonValue batchBaseline = cliReport(batchCtl, dir);
  const JsonValue batchReport = submitAndWait(client, batchCtl);
  EXPECT_EQ(strip(batchReport, kClockAndCounters),
            strip(batchBaseline, kClockAndCounters));
  server.drainAndStop();
}

TEST(Server, ConcurrentClientsMatchSequentialCli) {
  const TempDir dir("concurrent");
  writeGene(dir, "alpha");
  writeGene(dir, "beta");
  const std::string ctls[4] = {
      makeCtl(dir, "alpha", 6), makeCtl(dir, "beta", 6),
      makeCtl(dir, "alpha", 9), makeCtl(dir, "beta", 9)};
  JsonValue baselines[4];
  for (int j = 0; j < 4; ++j) baselines[j] = cliReport(ctls[j], dir);

  ServerOptions options;
  options.socketPath = dir.file("d.sock");
  options.workers = 2;
  AnalysisServer server(std::move(options));
  server.start();

  JsonValue reports[4];
  std::vector<std::thread> clients;
  for (int j = 0; j < 4; ++j)
    clients.emplace_back([&, j] {
      Client client(dir.file("d.sock"));
      reports[j] = submitAndWait(client, ctls[j]);
    });
  for (auto& t : clients) t.join();

  // Two workers race over shared warm state (including the busy-entry
  // private-clone path for same-gene jobs); every result must still equal
  // its sequential CLI baseline bit for bit.
  for (int j = 0; j < 4; ++j)
    EXPECT_EQ(strip(reports[j], kClockAndCounters),
              strip(baselines[j], kClockAndCounters))
        << "job " << j;
  server.drainAndStop();
}

TEST(Server, SecondJobWarmStartsFromContextCache) {
  const TempDir dir("warm");
  writeGene(dir, "gene");
  // maxIterations = 0: each fit evaluates the likelihood (and its FD
  // gradient) only around the initial point, so two identical jobs trace
  // identical specs and the second one's first evaluations hit the
  // propagators the first job left in the shared shards.  (The first job's
  // site scan runs last, at the initial-point spec, which is exactly where
  // the second job's H1 fit starts.)  cachePropagators = 1 opts in — the
  // default `slim` engine preset keeps the shard cache off.
  const std::string ctl =
      makeCtl(dir, "gene", 0, 1, "cachePropagators = 1\n");

  ServerOptions options;
  options.socketPath = dir.file("d.sock");
  options.workers = 1;
  AnalysisServer server(std::move(options));
  server.start();
  Client client(dir.file("d.sock"));

  const JsonValue first = submitAndWait(client, ctl);
  const JsonValue second = submitAndWait(client, ctl);

  // Same analysis, bit for bit...
  EXPECT_EQ(strip(first, kClockAndCounters), strip(second, kClockAndCounters));
  // ...but the context cache served the second job warm...
  const ContextCacheStats stats = server.cacheStats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_GE(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  // ...and its warm start shows up in the engine counters.
  const auto cacheHits = [](const JsonValue& report) {
    return report.at("test").at("counters").at("cacheHits").asNumber();
  };
  EXPECT_GT(cacheHits(second), cacheHits(first))
      << "first: " << dump(first.at("test").at("counters"))
      << " second: " << dump(second.at("test").at("counters"));
  server.drainAndStop();
}

TEST(Server, CancelsQueuedAndRunningJobs) {
  const TempDir dir("cancel");
  writeGene(dir, "gene");
  ServerOptions options;
  options.socketPath = dir.file("d.sock");
  options.workers = 1;
  AnalysisServer server(std::move(options));
  server.start();
  Client client(dir.file("d.sock"));

  // A long job (80 fits) occupies the single worker...
  const JsonValue longJob =
      client.call(submitRequest(makeCtl(dir, "gene", 500, 40)));
  ASSERT_TRUE(isOk(longJob));
  const std::string runningId = longJob.at("id").asString();
  waitForState(client, runningId, "running");

  // ...so this one is deterministically still queued when cancelled.
  const JsonValue queued = client.call(submitRequest(makeCtl(dir, "gene", 5)));
  const std::string queuedId = queued.at("id").asString();
  ASSERT_EQ(jobState(client, queuedId), "queued");
  const JsonValue cancelQueued = client.call(idRequest("cancel", queuedId));
  EXPECT_TRUE(isOk(cancelQueued));
  EXPECT_EQ(cancelQueued.at("state").asString(), "cancelled");
  const JsonValue queuedResult = client.call(idRequest("result", queuedId));
  EXPECT_FALSE(isOk(queuedResult));
  EXPECT_EQ(errorOf(queuedResult), "cancelled by client");

  // Cancelling the running job stops it at the next iteration boundary.
  EXPECT_TRUE(isOk(client.call(idRequest("cancel", runningId))));
  const JsonValue runningResult =
      client.call(idRequest("result", runningId, ",\"wait\":true"));
  EXPECT_FALSE(isOk(runningResult));
  EXPECT_EQ(runningResult.at("state").asString(), "cancelled");
  EXPECT_EQ(errorOf(runningResult), "cancelled by client");
  // Cancel is idempotent on a finished job.
  const JsonValue again = client.call(idRequest("cancel", runningId));
  EXPECT_TRUE(isOk(again));
  EXPECT_EQ(again.at("state").asString(), "cancelled");
  server.drainAndStop();
}

TEST(Server, DeadlineExceededFailsJob) {
  const TempDir dir("deadline");
  writeGene(dir, "gene");
  ServerOptions options;
  options.socketPath = dir.file("d.sock");
  options.workers = 1;
  AnalysisServer server(std::move(options));
  server.start();
  Client client(dir.file("d.sock"));

  const JsonValue submitted = client.call(submitRequest(
      makeCtl(dir, "gene", 500, 40), ",\"timeoutSec\":0.02"));
  ASSERT_TRUE(isOk(submitted));
  const JsonValue result = client.call(
      idRequest("result", submitted.at("id").asString(), ",\"wait\":true"));
  EXPECT_FALSE(isOk(result));
  EXPECT_EQ(result.at("state").asString(), "failed");
  EXPECT_EQ(errorOf(result), "deadline exceeded");
  server.drainAndStop();
}

TEST(Server, AdmissionControlAndMalformedRequests) {
  const TempDir dir("admission");
  writeGene(dir, "gene");
  ServerOptions options;
  options.socketPath = dir.file("d.sock");
  options.workers = 1;
  options.maxQueued = 1;
  options.maxRequestBytes = 4096;
  AnalysisServer server(std::move(options));
  server.start();
  Client client(dir.file("d.sock"));

  // Malformed and invalid requests: keyed error responses, connection stays
  // usable for the next request.
  EXPECT_NE(errorOf(client.call("{oops")).find("JSON parse error"),
            std::string::npos);
  EXPECT_NE(errorOf(client.call("{\"op\":\"submit\",\"ctl\":\"x\","
                                "\"priorty\":1}"))
                .find("priorty"),
            std::string::npos);
  EXPECT_NE(errorOf(client.call(submitRequest("no such key = 1\n")))
                .find("ctl:"),
            std::string::npos);
  EXPECT_NE(errorOf(client.call(submitRequest(
                        makeCtl(dir, "gene", 5, 1,
                                "checkpoint = " + dir.file("x.ckpt") + "\n"))))
                .find("checkpoint"),
            std::string::npos);
  EXPECT_NE(errorOf(client.call(submitRequest(
                        makeCtl(dir, "gene", 5, 1, "model = site\n"))))
                .find("branch-site"),
            std::string::npos);
  EXPECT_NE(errorOf(client.call(submitRequest(
                        makeCtl(dir, "gene", 5, 1,
                                "outfile = " + dir.file("out.txt") + "\n"))))
                .find("outfile"),
            std::string::npos);
  // checkpoint:true needs a state directory.
  EXPECT_NE(errorOf(client.call(submitRequest(makeCtl(dir, "gene", 5),
                                              ",\"checkpoint\":true")))
                .find("--state"),
            std::string::npos);
  EXPECT_TRUE(isOk(client.call("{\"op\":\"ping\"}")));

  // Queue bound: one running + one queued, the next submission is refused.
  const JsonValue running =
      client.call(submitRequest(makeCtl(dir, "gene", 500, 40)));
  ASSERT_TRUE(isOk(running));
  waitForState(client, running.at("id").asString(), "running");
  const JsonValue waiting = client.call(submitRequest(makeCtl(dir, "gene", 5)));
  ASSERT_TRUE(isOk(waiting));
  const JsonValue refused = client.call(submitRequest(makeCtl(dir, "gene", 5)));
  EXPECT_FALSE(isOk(refused));
  EXPECT_NE(errorOf(refused).find("queue full"), std::string::npos);

  // Oversized request line: bounded error, connection closed, daemon alive.
  {
    Client big(dir.file("d.sock"));
    const std::string huge(options.maxRequestBytes + 100, ' ');
    const JsonValue response = big.call(huge + "{\"op\":\"ping\"}");
    EXPECT_FALSE(isOk(response));
    EXPECT_NE(errorOf(response).find("exceeds"), std::string::npos);
  }
  EXPECT_TRUE(isOk(client.call("{\"op\":\"ping\"}")));
  server.drainAndStop();
}

TEST(Server, Kill9ThenRestartRecoversCheckpointedJob) {
  const TempDir dir("kill9");
  writeGene(dir, "gene");
  const std::string ctl =
      makeCtl(dir, "gene", 25, 6, "checkpointEverySec = 0\n");
  const JsonValue baseline = cliReport(ctl, dir);

  ServerOptions options;
  options.socketPath = dir.file("d.sock");
  options.stateDir = dir.file("state");
  options.workers = 1;

  std::string id;
  {
    AnalysisServer server{ServerOptions(options)};
    server.start();
    Client client(dir.file("d.sock"));
    const JsonValue submitted =
        client.call(submitRequest(ctl, ",\"checkpoint\":true"));
    ASSERT_TRUE(isOk(submitted)) << errorOf(submitted);
    id = submitted.at("id").asString();

    // Wait until the job's checkpoint has at least one snapshot on disk,
    // then emulate kill -9: threads torn down, nothing else persisted.
    const std::string ckpt = dir.file("state") + "/" + id + ".ckpt";
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!(fs::exists(ckpt) && fs::file_size(ckpt) > 0) &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_TRUE(fs::exists(ckpt)) << "checkpoint never appeared";
    server.abortStop();
  }

  // Restart on the same state directory: the journal re-queues the job and
  // its fits resume their recorded trajectories.
  AnalysisServer server{ServerOptions(options)};
  server.start();
  Client client(dir.file("d.sock"));
  const JsonValue result = client.call(idRequest("result", id, ",\"wait\":true"));
  ASSERT_TRUE(isOk(result)) << errorOf(result);
  const JsonValue report = result.at("report");

  // Bit-identical to the uninterrupted CLI run; only wall-clock, counters
  // and resume provenance may differ.
  EXPECT_EQ(strip(report, kClockCountersResume),
            strip(baseline, kClockCountersResume))
      << dump(report);

  // The finished result survives yet another restart (served from disk) and
  // the job's checkpoint file has been cleaned up.
  EXPECT_FALSE(fs::exists(dir.file("state") + "/" + id + ".ckpt"));
  server.drainAndStop();
  AnalysisServer third{ServerOptions(options)};
  third.start();
  Client again(dir.file("d.sock"));
  const JsonValue replay = again.call(idRequest("result", id));
  ASSERT_TRUE(isOk(replay)) << errorOf(replay);
  EXPECT_EQ(strip(replay.at("report"), kClockCountersResume),
            strip(baseline, kClockCountersResume));
  third.drainAndStop();
}

TEST(Server, DrainPersistsQueueAcrossRestart) {
  const TempDir dir("drain");
  writeGene(dir, "gene");
  const std::string longCtl =
      makeCtl(dir, "gene", 25, 4, "checkpointEverySec = 0\n");
  const std::string shortCtl = makeCtl(dir, "gene", 6);
  const JsonValue longBaseline = cliReport(longCtl, dir);
  const JsonValue shortBaseline = cliReport(shortCtl, dir);

  ServerOptions options;
  options.socketPath = dir.file("d.sock");
  options.stateDir = dir.file("state");
  options.workers = 1;

  std::string longId, shortId;
  {
    AnalysisServer server{ServerOptions(options)};
    server.start();
    Client client(dir.file("d.sock"));
    const JsonValue first =
        client.call(submitRequest(longCtl, ",\"checkpoint\":true"));
    ASSERT_TRUE(isOk(first)) << errorOf(first);
    longId = first.at("id").asString();
    waitForState(client, longId, "running");
    const JsonValue second = client.call(submitRequest(shortCtl));
    ASSERT_TRUE(isOk(second)) << errorOf(second);
    shortId = second.at("id").asString();

    // The drain op asks the owner to stop; admission closes immediately.
    EXPECT_TRUE(isOk(client.call("{\"op\":\"drain\"}")));
    EXPECT_TRUE(server.stopRequested());
    EXPECT_NE(errorOf(client.call(submitRequest(shortCtl))).find("draining"),
              std::string::npos);
    server.drainAndStop();
  }
  ASSERT_TRUE(fs::exists(dir.file("state") + "/jobs.journal"));

  // Both interrupted jobs complete after restart and match their baselines.
  AnalysisServer server{ServerOptions(options)};
  server.start();
  Client client(dir.file("d.sock"));
  const JsonValue longResult =
      client.call(idRequest("result", longId, ",\"wait\":true"));
  ASSERT_TRUE(isOk(longResult)) << errorOf(longResult);
  EXPECT_EQ(strip(longResult.at("report"), kClockCountersResume),
            strip(longBaseline, kClockCountersResume));
  const JsonValue shortResult =
      client.call(idRequest("result", shortId, ",\"wait\":true"));
  ASSERT_TRUE(isOk(shortResult)) << errorOf(shortResult);
  EXPECT_EQ(strip(shortResult.at("report"), kClockCountersResume),
            strip(shortBaseline, kClockCountersResume));
  server.drainAndStop();
}

}  // namespace
}  // namespace slim::serve
