// Tests for the symmetric eigensolvers: known spectra, residual/orthogonality
// properties over random matrices, and cross-validation of the QL solver
// against the independently-implemented Jacobi solver.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "eigenx/sym_eigen.hpp"
#include "test_util.hpp"

namespace slim::eigenx {
namespace {

using linalg::Matrix;
using testutil::randomSymmetric;

TEST(SymEigen, DiagonalMatrix) {
  const double d[] = {3.0, -1.0, 2.0};
  const auto r = symEigen(Matrix::diagonal({d, 3}));
  ASSERT_EQ(r.values.size(), 3u);
  EXPECT_NEAR(r.values[0], -1.0, 1e-14);
  EXPECT_NEAR(r.values[1], 2.0, 1e-14);
  EXPECT_NEAR(r.values[2], 3.0, 1e-14);
}

TEST(SymEigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  const auto r = symEigen(Matrix::fromRows({{2, 1}, {1, 2}}));
  EXPECT_NEAR(r.values[0], 1.0, 1e-14);
  EXPECT_NEAR(r.values[1], 3.0, 1e-14);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(r.vectors(0, 1)), std::sqrt(0.5), 1e-12);
}

TEST(SymEigen, OneByOne) {
  const auto r = symEigen(Matrix::fromRows({{7.0}}));
  EXPECT_NEAR(r.values[0], 7.0, 1e-15);
  EXPECT_NEAR(std::fabs(r.vectors(0, 0)), 1.0, 1e-15);
}

TEST(SymEigen, RejectsNonSquare) {
  EXPECT_THROW(symEigen(Matrix(2, 3)), std::invalid_argument);
  EXPECT_THROW(symEigen(Matrix(0, 0)), std::invalid_argument);
}

TEST(SymEigen, UsesLowerTriangleOnly) {
  // Upper triangle deliberately poisoned; contract is uplo='L'.
  Matrix a = Matrix::fromRows({{2, 999}, {1, 2}});
  const auto r = symEigen(a);
  EXPECT_NEAR(r.values[0], 1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 3.0, 1e-12);
}

TEST(SymEigen, TraceAndValuesSumAgree) {
  const Matrix a = randomSymmetric(12, 42);
  const auto r = symEigen(a);
  double trace = 0, sum = 0;
  for (std::size_t i = 0; i < 12; ++i) {
    trace += a(i, i);
    sum += r.values[i];
  }
  EXPECT_NEAR(trace, sum, 1e-10);
}

class SymEigenProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SymEigenProperty, ResidualAndOrthogonality) {
  const std::size_t n = GetParam();
  for (unsigned seed : {1u, 17u, 33u}) {
    const Matrix a = randomSymmetric(n, seed);
    const auto r = symEigen(a);
    EXPECT_LT(eigenResidual(a, r), 1e-11 * static_cast<double>(n))
        << "n=" << n << " seed=" << seed;
    EXPECT_LT(orthogonalityError(r.vectors), 1e-12 * static_cast<double>(n));
    // Ascending order.
    EXPECT_TRUE(std::is_sorted(r.values.begin(), r.values.end()));
  }
}

TEST_P(SymEigenProperty, JacobiAgreesWithQl) {
  const std::size_t n = GetParam();
  const Matrix a = randomSymmetric(n, 7);
  const auto ql = symEigen(a);
  const auto jac = symEigenJacobi(a);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(ql.values[i], jac.values[i], 1e-9 * static_cast<double>(n))
        << "eigenvalue " << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, SymEigenProperty,
                         ::testing::Values(2, 3, 5, 8, 13, 21, 34, 61));

TEST(SymEigenJacobi, ResidualOnCodonSizedMatrix) {
  const Matrix a = randomSymmetric(61, 99);
  const auto r = symEigenJacobi(a);
  EXPECT_LT(eigenResidual(a, r), 1e-9);
  EXPECT_LT(orthogonalityError(r.vectors), 1e-10);
}

TEST(SymEigen, RepeatedEigenvalues) {
  // Identity: eigenvalue 1 with multiplicity n; vectors stay orthonormal.
  const auto r = symEigen(Matrix::identity(6));
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(r.values[i], 1.0, 1e-14);
  EXPECT_LT(orthogonalityError(r.vectors), 1e-13);
}

TEST(SymEigen, RankOneMatrix) {
  // v v^T with v = ones: eigenvalues {0,...,0, n}.
  const std::size_t n = 5;
  Matrix a(n, n, 1.0);
  const auto r = symEigen(a);
  for (std::size_t i = 0; i + 1 < n; ++i) EXPECT_NEAR(r.values[i], 0.0, 1e-12);
  EXPECT_NEAR(r.values[n - 1], static_cast<double>(n), 1e-12);
}

TEST(SymEigen, NegativeDefinite) {
  Matrix a = Matrix::fromRows({{-4, 1}, {1, -4}});
  const auto r = symEigen(a);
  EXPECT_NEAR(r.values[0], -5.0, 1e-13);
  EXPECT_NEAR(r.values[1], -3.0, 1e-13);
}

TEST(SymEigen, ScalingInvariance) {
  // eig(c*A) == c*eig(A) for c > 0.
  const Matrix a = randomSymmetric(9, 3);
  Matrix b = a;
  for (std::size_t k = 0; k < b.size(); ++k) b.data()[k] *= 2.5;
  const auto ra = symEigen(a);
  const auto rb = symEigen(b);
  for (std::size_t i = 0; i < 9; ++i)
    EXPECT_NEAR(rb.values[i], 2.5 * ra.values[i], 1e-11);
}

}  // namespace
}  // namespace slim::eigenx
