// Tests for the batch-first analysis API: AnalysisContext sharing,
// TaskScheduler policy decisions, and BatchAnalysis.
//
// The central contract mirrors the parallel engine's: BatchAnalysis::runAll()
// is *bit-identical* (EXPECT_EQ on doubles) to running each gene's
// BranchSiteAnalysis::run() sequentially, for every worker count and both
// ParallelPolicy settings, because tasks share nothing mutable — per-task
// cache shards, task-local RNGs — and results land in slots addressed by
// task index.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/batch.hpp"
#include "core/config.hpp"
#include "core/report.hpp"
#include "core/scheduler.hpp"
#include "sim/datasets.hpp"

namespace slim::core {
namespace {

using model::Hypothesis;

struct Gene {
  seqio::CodonAlignment codons;
  std::shared_ptr<const tree::Tree> tree;
};

// A small simulated batch: 5 taxa x 30 codons per gene, alternating between
// genuine positive selection and the null.
std::vector<Gene> makeGenes(int numGenes) {
  const auto& gc = bio::GeneticCode::universal();
  std::vector<Gene> genes;
  for (int g = 0; g < numGenes; ++g) {
    sim::Rng rng(20260731 + 100 * g);
    auto tree = sim::yuleTree(5, rng);
    sim::pickForegroundBranch(tree, rng);
    const auto pi = sim::randomCodonFrequencies(gc.numSense(), 5, rng);
    model::BranchSiteParams truth;
    truth.kappa = 2.0;
    truth.omega0 = 0.1;
    truth.omega2 = g % 2 == 0 ? 6.0 : 1.0;
    truth.p0 = 0.4;
    truth.p1 = 0.4;
    const auto simOut = sim::evolveBranchSite(
        gc, tree, truth, g % 2 == 0 ? Hypothesis::H1 : Hypothesis::H0,
        /*numCodons=*/30, pi, rng);
    genes.push_back({seqio::encodeCodons(simOut.alignment, gc),
                     std::make_shared<const tree::Tree>(std::move(tree))});
  }
  return genes;
}

FitOptions quickOptions() {
  FitOptions o;
  o.bfgs.maxIterations = 3;
  return o;
}

void expectSameTest(const PositiveSelectionTest& a,
                    const PositiveSelectionTest& b, const std::string& label) {
  for (const auto& [pa, pb] :
       {std::pair{&a.h0, &b.h0}, std::pair{&a.h1, &b.h1}}) {
    const FitResult& fa = *pa;
    const FitResult& fb = *pb;
    EXPECT_EQ(fa.lnL, fb.lnL) << label;
    EXPECT_EQ(fa.params.kappa, fb.params.kappa) << label;
    EXPECT_EQ(fa.params.omega0, fb.params.omega0) << label;
    EXPECT_EQ(fa.params.omega2, fb.params.omega2) << label;
    EXPECT_EQ(fa.params.p0, fb.params.p0) << label;
    EXPECT_EQ(fa.params.p1, fb.params.p1) << label;
    EXPECT_EQ(fa.branchLengths, fb.branchLengths) << label;
    EXPECT_EQ(fa.iterations, fb.iterations) << label;
    EXPECT_EQ(fa.functionEvaluations, fb.functionEvaluations) << label;
  }
  EXPECT_EQ(a.lrt.statistic, b.lrt.statistic) << label;
  EXPECT_EQ(a.posteriors.positiveSelectionBySite,
            b.posteriors.positiveSelectionBySite)
      << label;
}

// ---------- TaskScheduler ----------

TEST(TaskScheduler, PolicyDecisions) {
  const TaskScheduler s(4);
  EXPECT_EQ(s.numWorkers(), 4);
  // Auto: task-level only when tasks can keep every worker busy.
  EXPECT_TRUE(s.useTaskLevel(8, ParallelPolicy::Auto));
  EXPECT_TRUE(s.useTaskLevel(4, ParallelPolicy::Auto));
  EXPECT_FALSE(s.useTaskLevel(2, ParallelPolicy::Auto));
  // Forced policies.
  EXPECT_TRUE(s.useTaskLevel(2, ParallelPolicy::TaskLevel));
  EXPECT_FALSE(s.useTaskLevel(100, ParallelPolicy::PatternLevel));
  // A single task never fans out.
  EXPECT_FALSE(s.useTaskLevel(1, ParallelPolicy::TaskLevel));
  // Thread budget per task follows the decision.
  EXPECT_EQ(s.taskThreads(8, ParallelPolicy::Auto), 1);
  EXPECT_EQ(s.taskThreads(2, ParallelPolicy::Auto), 4);
  EXPECT_EQ(s.taskThreads(100, ParallelPolicy::PatternLevel), 4);

  const TaskScheduler serial(1);
  EXPECT_FALSE(serial.useTaskLevel(100, ParallelPolicy::TaskLevel));
  EXPECT_EQ(serial.taskThreads(100, ParallelPolicy::TaskLevel), 1);
}

TEST(TaskScheduler, RunsEveryTaskOncePerPolicy) {
  TaskScheduler s(3);
  for (auto policy : {ParallelPolicy::Auto, ParallelPolicy::TaskLevel,
                      ParallelPolicy::PatternLevel}) {
    constexpr int kTasks = 64;
    std::vector<std::atomic<int>> runs(kTasks);
    s.run(kTasks, policy, [&](int i) { runs[i].fetch_add(1); });
    for (int i = 0; i < kTasks; ++i)
      EXPECT_EQ(runs[i].load(), 1) << parallelPolicyName(policy) << " " << i;
  }
}

TEST(TaskScheduler, SequentialModeRunsInIndexOrder) {
  TaskScheduler s(4);
  int next = 0;
  s.run(10, ParallelPolicy::PatternLevel, [&](int i) { EXPECT_EQ(i, next++); });
  EXPECT_EQ(next, 10);
}

TEST(TaskScheduler, RethrowsTaskException) {
  TaskScheduler s(2);
  EXPECT_THROW(s.run(16, ParallelPolicy::TaskLevel,
                     [](int i) {
                       if (i == 11) throw std::runtime_error("boom");
                     }),
               std::runtime_error);
}

// ---------- AnalysisContext ----------

TEST(AnalysisContext, SharesTreeAndFeedsWrapper) {
  const auto genes = makeGenes(1);
  const auto ctx = AnalysisContext::create(genes[0].codons, genes[0].tree,
                                           EngineKind::Slim, quickOptions());
  // The parsed tree is shared, not copied per context.
  EXPECT_EQ(ctx->treePtr().get(), genes[0].tree.get());
  EXPECT_GT(ctx->patterns().numPatterns(), 0u);
  EXPECT_EQ(ctx->pi().size(), 61u);

  // A wrapper over the context and a wrapper built from raw inputs agree
  // exactly (same code path underneath).
  BranchSiteAnalysis fromContext(ctx);
  BranchSiteAnalysis fromInputs(genes[0].codons, *genes[0].tree,
                                EngineKind::Slim, quickOptions());
  EXPECT_EQ(fromContext.fit(Hypothesis::H0).lnL,
            fromInputs.fit(Hypothesis::H0).lnL);
}

TEST(AnalysisContext, CacheShardsFollowEngineOptions) {
  const auto genes = makeGenes(1);
  // Slim preset: caching off -> no shards handed out.
  const auto plain = AnalysisContext::create(genes[0].codons, genes[0].tree,
                                             EngineKind::Slim, quickOptions());
  EXPECT_EQ(plain->cacheShard(0), nullptr);

  FitOptions cached = quickOptions();
  cached.tuning.cachePropagators = 1;
  const auto ctx = AnalysisContext::create(genes[0].codons, genes[0].tree,
                                           EngineKind::Slim, cached);
  const auto shard = ctx->cacheShard(0);
  ASSERT_NE(shard, nullptr);
  // Slots are stable (same shard back) and per-task (distinct per slot).
  EXPECT_EQ(ctx->cacheShard(0), shard);
  EXPECT_NE(ctx->cacheShard(1), shard);

  // Running through the wrapper leaves the shards warm on the context.
  BranchSiteAnalysis analysis(ctx);
  analysis.run();
  EXPECT_GT(ctx->cachedPropagators(), 0u);
}

// ---------- BatchAnalysis: the bit-identity contract ----------

TEST(BatchAnalysis, BitIdenticalToSequentialAcrossThreadsAndPolicies) {
  const auto genes = makeGenes(6);

  // Baseline: each gene through the single-gene wrapper, sequentially.
  std::vector<PositiveSelectionTest> baseline;
  for (const auto& gene : genes) {
    BranchSiteAnalysis analysis(gene.codons, *gene.tree, EngineKind::Slim,
                                quickOptions());
    baseline.push_back(analysis.run());
  }

  for (const int threads : {1, 2, 8}) {
    for (const auto policy :
         {ParallelPolicy::TaskLevel, ParallelPolicy::PatternLevel}) {
      BatchOptions options;
      options.fit = quickOptions();
      options.fit.tuning.numThreads = threads;
      options.fit.tuning.policy = policy;
      BatchAnalysis batch(EngineKind::Slim, options);
      for (const auto& gene : genes) batch.addGene(gene.codons, gene.tree);
      const auto tests = batch.runAll();

      ASSERT_EQ(tests.size(), genes.size());
      EXPECT_EQ(batch.lastRun().workers, threads);
      EXPECT_EQ(batch.lastRun().taskLevel,
                threads > 1 && policy == ParallelPolicy::TaskLevel);
      const std::string label = std::string("threads=") +
                                std::to_string(threads) + " policy=" +
                                parallelPolicyName(policy);
      for (std::size_t g = 0; g < genes.size(); ++g)
        expectSameTest(tests[g], baseline[g], label + " gene=" + std::to_string(g));
    }
  }
}

TEST(BatchAnalysis, SharedCacheReproducesIsolatedRunsExactly) {
  const auto genes = makeGenes(3);
  FitOptions cached = quickOptions();
  cached.tuning.cachePropagators = 1;

  // Isolated per-gene runs, each with its own context and private shards.
  std::vector<PositiveSelectionTest> isolated;
  for (const auto& gene : genes) {
    BranchSiteAnalysis analysis(gene.codons, *gene.tree, EngineKind::Slim,
                                cached);
    isolated.push_back(analysis.run());
  }

  // One batch sharing contexts + shards across concurrently-running tasks.
  BatchOptions options;
  options.fit = cached;
  options.fit.tuning.numThreads = 4;
  options.fit.tuning.policy = ParallelPolicy::TaskLevel;
  BatchAnalysis batch(EngineKind::Slim, options);
  for (const auto& gene : genes) batch.addGene(gene.codons, gene.tree);
  const auto tests = batch.runAll();

  for (std::size_t g = 0; g < genes.size(); ++g)
    expectSameTest(tests[g], isolated[g], "cached gene=" + std::to_string(g));
  EXPECT_GT(batch.totals().propagatorCacheHits, 0);

  // And cache on/off agree bit for bit (exact keying), batch vs batch.
  BatchOptions uncachedOptions = options;
  uncachedOptions.fit.tuning.cachePropagators = 0;
  BatchAnalysis uncached(EngineKind::Slim, uncachedOptions);
  for (const auto& gene : genes) uncached.addGene(gene.codons, gene.tree);
  const auto plainTests = uncached.runAll();
  for (std::size_t g = 0; g < genes.size(); ++g)
    expectSameTest(tests[g], plainTests[g], "cache on/off gene=" + std::to_string(g));
}

// ---------- EvalCounters aggregation ----------

TEST(BatchAnalysis, CountersSumAcrossConcurrentTasks) {
  const auto genes = makeGenes(4);
  BatchOptions options;
  options.fit = quickOptions();
  options.fit.tuning.numThreads = 8;
  options.fit.tuning.cachePropagators = 1;
  options.fit.tuning.policy = ParallelPolicy::TaskLevel;
  BatchAnalysis batch(EngineKind::Slim, options);
  for (const auto& gene : genes) batch.addGene(gene.codons, gene.tree);
  const auto tests = batch.runAll();

  // Per-test counters cover both fits *plus* the site scan (the scan's work
  // used to be dropped on the floor).
  lik::EvalCounters manual;
  for (const auto& t : tests) {
    EXPECT_GT(t.h0.counters.evaluations, 0);
    EXPECT_GT(t.h1.counters.evaluations, 0);
    EXPECT_GE(t.counters.evaluations,
              t.h0.counters.evaluations + t.h1.counters.evaluations + 1);
    manual += t.counters;
  }
  EXPECT_EQ(batch.totals().evaluations, manual.evaluations);
  EXPECT_EQ(batch.totals().propagatorBuilds, manual.propagatorBuilds);
  EXPECT_EQ(batch.totals().propagatorCacheHits, manual.propagatorCacheHits);
  EXPECT_EQ(batch.totals().propagatorCacheMisses, manual.propagatorCacheMisses);

  // The aggregate is deterministic: a fresh identical batch at a different
  // worker count reports identical totals.
  BatchOptions serialOptions = options;
  serialOptions.fit.tuning.numThreads = 1;
  BatchAnalysis serial(EngineKind::Slim, serialOptions);
  for (const auto& gene : genes) serial.addGene(gene.codons, gene.tree);
  serial.runAll();
  EXPECT_EQ(serial.totals().evaluations, batch.totals().evaluations);
  EXPECT_EQ(serial.totals().eigenDecompositions,
            batch.totals().eigenDecompositions);
  EXPECT_EQ(serial.totals().propagatorBuilds, batch.totals().propagatorBuilds);
  EXPECT_EQ(serial.totals().propagatorCacheHits,
            batch.totals().propagatorCacheHits);
}

// ---------- deterministic per-gene seeding ----------

TEST(BatchAnalysis, JitterSeedBaseDerivesPerGeneSeeds) {
  const auto genes = makeGenes(3);
  BatchOptions options;
  options.fit = quickOptions();
  options.jitterSeedBase = 500;
  BatchAnalysis batch(EngineKind::Slim, options);
  for (const auto& gene : genes) batch.addGene(gene.codons, gene.tree);
  const auto tests = batch.runAll();

  for (std::size_t g = 0; g < genes.size(); ++g) {
    // Seeds derive from the gene index, not from any scheduling order...
    EXPECT_EQ(batch.geneOptions(static_cast<GeneHandle>(g)).startJitterSeed,
              500u + g);
    // ...so a standalone run with the resolved options reproduces the gene.
    BranchSiteAnalysis isolated(genes[g].codons, *genes[g].tree,
                                EngineKind::Slim,
                                batch.geneOptions(static_cast<GeneHandle>(g)));
    expectSameTest(tests[g], isolated.run(), "seeded gene=" + std::to_string(g));
  }
}

// ---------- batch directory enumeration ----------

// Gene order fixes gene indices — and therefore jitterSeedBase-derived
// per-gene seeds, checkpoint task keys and report ordering.  Enumeration
// must be sorted lexicographically, never readdir order (which depends on
// the host filesystem: a batch submitted on ext4 and resumed on xfs would
// silently renumber its genes).
TEST(ScanBatchDirectory, SortsLexicographicallyAndFiltersExtensions) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "slim_batch_scan_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  // Created deliberately out of lexicographic order, so a readdir-order
  // regression has a chance of surfacing even on filesystems that return
  // entries in creation order.
  for (const char* name : {"zeta.fasta", "alpha.phy", "mid.fa", "beta.fas",
                           "omega.phylip", "notes.txt", "a_dir.fasta.bak"})
    std::ofstream(dir / name) << ">x\nATG\n";
  fs::create_directories(dir / "sub.fasta");  // directories never count

  const auto files = scanBatchDirectory(dir.string());
  ASSERT_EQ(files.size(), 5u);
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
  const std::vector<std::string> expected = {
      (dir / "alpha.phy").string(), (dir / "beta.fas").string(),
      (dir / "mid.fa").string(), (dir / "omega.phylip").string(),
      (dir / "zeta.fasta").string()};
  EXPECT_EQ(files, expected);

  // Errors are keyed ConfigErrors, not raw filesystem surprises.
  EXPECT_THROW(scanBatchDirectory((dir / "nope").string()), ConfigError);
  const fs::path empty = dir / "empty";
  fs::create_directories(empty);
  EXPECT_THROW(scanBatchDirectory(empty.string()), ConfigError);
  fs::remove_all(dir);
}

// ---------- reports over batch results ----------

TEST(BatchReport, SummaryAndJsonContainKeySections) {
  const auto genes = makeGenes(2);
  BatchOptions options;
  options.fit = quickOptions();
  BatchAnalysis batch(EngineKind::Slim, options);
  for (const auto& gene : genes) batch.addGene(gene.codons, gene.tree);
  const auto tests = batch.runAll();
  const std::vector<std::string> names = {"geneA", "geneB"};

  std::ostringstream text;
  writeBatchSummary(text, tests, names, EngineKind::Slim, batch.totals(),
                    batch.lastRun());
  EXPECT_NE(text.str().find("Batch summary"), std::string::npos);
  EXPECT_NE(text.str().find("geneA"), std::string::npos);
  EXPECT_NE(text.str().find("engine totals"), std::string::npos);

  std::ostringstream json;
  writeJsonBatchReport(json, tests, names, EngineKind::Slim, batch.totals(),
                       batch.lastRun());
  const std::string j = json.str();
  EXPECT_NE(j.find("\"genes\":["), std::string::npos);
  EXPECT_NE(j.find("\"gene\":\"geneB\""), std::string::npos);
  EXPECT_NE(j.find("\"lrt\""), std::string::npos);
  EXPECT_NE(j.find("\"totals\""), std::string::npos);
  EXPECT_NE(j.find("\"workers\""), std::string::npos);
  // Structurally sane: every brace/bracket closes.
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
            std::count(j.begin(), j.end(), '}'));
  EXPECT_EQ(std::count(j.begin(), j.end(), '['),
            std::count(j.begin(), j.end(), ']'));
}

}  // namespace
}  // namespace slim::core
