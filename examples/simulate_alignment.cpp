// Evolver CLI: generate a codon alignment under branch-site model A along a
// random Yule tree and print it (FASTA + tagged Newick) — the tool used to
// create the synthetic stand-ins for the paper's Table II datasets.
//
// Usage: simulate_alignment [species] [codons] [omega2] [seed]
//        (defaults: 8 species, 120 codons, omega2 = 2.5, seed = 1)

#include <cstdlib>
#include <iostream>

#include "sim/datasets.hpp"

int main(int argc, char** argv) {
  using namespace slim;
  const int species = argc > 1 ? std::atoi(argv[1]) : 8;
  const int codons = argc > 2 ? std::atoi(argv[2]) : 120;
  const double omega2 = argc > 3 ? std::atof(argv[3]) : 2.5;
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;

  if (species < 2 || codons < 1 || omega2 < 1.0) {
    std::cerr << "usage: simulate_alignment [species>=2] [codons>=1] "
                 "[omega2>=1] [seed]\n";
    return 1;
  }

  sim::Rng rng(seed);
  auto tree = sim::yuleTree(species, rng);
  sim::pickForegroundBranch(tree, rng);

  const auto& gc = bio::GeneticCode::universal();
  const auto pi = sim::randomCodonFrequencies(gc.numSense(), 5, rng);
  auto params = sim::defaultSimulationParams();
  params.omega2 = omega2;
  const auto simOut = sim::evolveBranchSite(gc, tree, params,
                                            model::Hypothesis::H1, codons, pi,
                                            rng);

  std::cout << "# tree (foreground branch tagged #1):\n"
            << tree.toNewick() << "\n\n# alignment (" << species
            << " sequences x " << codons << " codons):\n";
  simOut.alignment.writeFasta(std::cout);

  std::cout << "\n# true site classes (0 conserved, 1 neutral, 2a/2b "
               "positive):\n# ";
  const char* names[] = {"0", "1", "2a", "2b"};
  for (int m : simOut.siteClasses) std::cout << names[m] << ' ';
  std::cout << '\n';
  return 0;
}
