// Branch scan: the Selectome-style workflow of testing *every* branch of a
// gene tree for positive selection, one LRT per branch (paper Sec. I-A:
// "this is done iteratively for each branch of a phylogenetic tree").
//
// The gene is simulated so the true foreground branch is known; the scan
// should single it out.
//
// Usage: positive_selection_scan [seed]

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/analysis.hpp"
#include "sim/datasets.hpp"

int main(int argc, char** argv) {
  using namespace slim;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // Simulate one gene with strong selection on a known branch.
  sim::Rng rng(seed);
  auto tree = sim::yuleTree(5, rng);
  const int trueForeground = sim::pickForegroundBranch(tree, rng);
  const auto& gc = bio::GeneticCode::universal();
  const auto pi = sim::randomCodonFrequencies(gc.numSense(), 5, rng);
  model::BranchSiteParams truth;
  truth.kappa = 2.0;
  truth.omega0 = 0.05;
  truth.omega2 = 10.0;
  truth.p0 = 0.25;
  truth.p1 = 0.25;
  const auto simOut =
      sim::evolveBranchSite(gc, tree, truth, model::Hypothesis::H1,
                            /*numCodons=*/120, pi, rng);
  const auto codons = seqio::encodeCodons(simOut.alignment, gc);

  std::cout << "Gene tree: " << tree.toNewick() << "\n"
            << "True foreground branch: node " << trueForeground << " ("
            << (tree.node(trueForeground).isLeaf()
                    ? tree.node(trueForeground).label
                    : "internal")
            << ")\n\n"
            << "Scanning all " << tree.numBranches()
            << " branches with the SlimCodeML engine:\n\n"
            << std::left << std::setw(8) << "branch" << std::setw(10)
            << "type" << std::setw(14) << "2*dlnL" << std::setw(12)
            << "p(chi2_1)" << std::setw(10) << "omega2" << "verdict\n";

  core::FitOptions options;
  options.bfgs.maxIterations = 12;

  for (int node : tree.branches()) {
    tree::Tree scanTree = tree;
    scanTree.setForegroundBranch(node);
    core::BranchSiteAnalysis analysis(codons, scanTree, core::EngineKind::Slim,
                                      options);
    const auto test = analysis.run();
    const bool hit = test.lrt.significantAt(0.05);
    std::cout << std::left << std::setw(8) << node << std::setw(10)
              << (tree.node(node).isLeaf() ? tree.node(node).label
                                           : "internal")
              << std::setw(14) << std::setprecision(4) << test.lrt.statistic
              << std::setw(12) << test.lrt.pChi2 << std::setw(10)
              << test.h1.params.omega2 << (hit ? "SELECTED" : "-")
              << (node == trueForeground ? "   <== true foreground" : "")
              << '\n';
  }
  return 0;
}
