// Mini-Selectome: a genome-scale batch of branch-site tests on the
// batch-first API.  Simulates a set of genes — some evolving under positive
// selection on a marked branch, some neutrally — then runs every full H0/H1
// LRT twice: sequentially through per-gene BranchSiteAnalysis (the PR-1
// workflow) and through core::BatchAnalysis, which fans the 2N independent
// fits across the worker pool.  The two paths are asserted bit-identical,
// so the wall-clock comparison printed at the end isolates exactly the
// batch scheduler's contribution (the paper's motivating use case: "CodeML
// is also the central component for populating the Selectome database").
//
// Usage: genome_scan [numGenes] [seed] [threads]   (threads 0: all cores)

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/batch.hpp"
#include "sim/datasets.hpp"

int main(int argc, char** argv) {
  using namespace slim;
  const int numGenes = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  const int threads = argc > 3 ? std::atoi(argv[3]) : 0;

  const auto& gc = bio::GeneticCode::universal();
  core::FitOptions options;
  options.bfgs.maxIterations = 12;

  // Simulate the gene set: half under selection, half under the null.
  struct Gene {
    seqio::CodonAlignment codons;
    tree::Tree tree;
    bool underSelection;
  };
  std::vector<Gene> genes;
  for (int g = 0; g < numGenes; ++g) {
    sim::Rng rng(seed + 1000 * g);
    auto tree = sim::yuleTree(6, rng);
    sim::pickForegroundBranch(tree, rng);
    const auto pi = sim::randomCodonFrequencies(gc.numSense(), 5, rng);

    const bool underSelection = (g % 2 == 0);
    model::BranchSiteParams truth;
    truth.kappa = 2.0;
    truth.omega0 = 0.08;
    truth.omega2 = underSelection ? 8.0 : 1.0;
    truth.p0 = 0.35;
    truth.p1 = 0.35;
    const auto simOut = sim::evolveBranchSite(
        gc, tree, truth,
        underSelection ? model::Hypothesis::H1 : model::Hypothesis::H0,
        /*numCodons=*/120, pi, rng);
    genes.push_back({seqio::encodeCodons(simOut.alignment, gc),
                     std::move(tree), underSelection});
  }

  // Pass 1: the sequential per-gene workflow (one BranchSiteAnalysis each).
  std::vector<core::PositiveSelectionTest> sequential;
  double sequentialSeconds = 0;
  for (const auto& gene : genes) {
    core::BranchSiteAnalysis analysis(gene.codons, gene.tree,
                                      core::EngineKind::Slim, options);
    sequential.push_back(analysis.run());
    sequentialSeconds += sequential.back().totalSeconds;
  }

  // Pass 2: the same genes through the batch scheduler.
  core::BatchOptions batchOptions;
  batchOptions.fit = options;
  batchOptions.fit.tuning.numThreads = threads;
  core::BatchAnalysis batch(core::EngineKind::Slim, batchOptions);
  for (const auto& gene : genes) batch.addGene(gene.codons, gene.tree);
  const auto tests = batch.runAll();

  // The whole result must match, not just the likelihoods: parameter
  // estimates, branch lengths and NEB posteriors would each expose a
  // scheduling-order leak that equal lnLs could mask.
  const auto sameFit = [](const core::FitResult& a, const core::FitResult& b) {
    return a.lnL == b.lnL && a.params.kappa == b.params.kappa &&
           a.params.omega0 == b.params.omega0 &&
           a.params.omega2 == b.params.omega2 && a.params.p0 == b.params.p0 &&
           a.params.p1 == b.params.p1 && a.branchLengths == b.branchLengths;
  };

  std::cout << "gene   truth      2*dlnL     p(chi2_1)  omega2_hat  verdict\n";
  int truePositives = 0, falsePositives = 0, positives = 0, negatives = 0;
  bool identical = true;
  for (int g = 0; g < numGenes; ++g) {
    const auto& test = tests[g];
    identical = identical && sameFit(test.h0, sequential[g].h0) &&
                sameFit(test.h1, sequential[g].h1) &&
                test.posteriors.positiveSelectionBySite ==
                    sequential[g].posteriors.positiveSelectionBySite;

    const bool detected = test.lrt.significantAt(0.05);
    (genes[g].underSelection ? positives : negatives)++;
    if (detected && genes[g].underSelection) ++truePositives;
    if (detected && !genes[g].underSelection) ++falsePositives;

    std::cout << std::left << std::setw(7) << g << std::setw(11)
              << (genes[g].underSelection ? "selected" : "neutral")
              << std::setw(11) << std::setprecision(4) << test.lrt.statistic
              << std::setw(11) << test.lrt.pChi2 << std::setw(12)
              << test.h1.params.omega2 << (detected ? "DETECTED" : "-")
              << '\n';
  }

  const auto& info = batch.lastRun();
  std::cout << "\nSummary over " << numGenes << " genes:\n"
            << "  detected " << truePositives << "/" << positives
            << " genes under selection\n"
            << "  false alarms on " << falsePositives << "/" << negatives
            << " neutral genes (5% level)\n"
            << "  batch vs sequential (lnL, params, posteriors): "
            << (identical ? "bit-identical" : "MISMATCH") << '\n'
            << std::setprecision(3) << "  sequential: " << sequentialSeconds
            << " s;  batch: " << info.seconds << " s on " << info.workers
            << " workers (" << (info.taskLevel ? "task" : "pattern")
            << "-level), speedup " << std::setprecision(2)
            << sequentialSeconds / info.seconds << "x\n";
  return identical ? 0 : 1;
}
