// Mini-Selectome: a genome-scale batch of branch-site tests.  Simulates a
// set of genes — some evolving under positive selection on a marked branch,
// some neutrally — runs the full H0/H1 LRT on each with the SlimCodeML
// engine, and summarizes detection performance (the paper's motivating
// use case: "CodeML is also the central component for populating the
// Selectome database").
//
// Usage: genome_scan [numGenes] [seed]

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/analysis.hpp"
#include "sim/datasets.hpp"

int main(int argc, char** argv) {
  using namespace slim;
  const int numGenes = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  const auto& gc = bio::GeneticCode::universal();
  core::FitOptions options;
  options.bfgs.maxIterations = 12;

  std::cout << "gene   truth      2*dlnL     p(chi2_1)  omega2_hat  verdict\n";

  int truePositives = 0, falsePositives = 0, positives = 0, negatives = 0;
  double totalSeconds = 0;

  for (int g = 0; g < numGenes; ++g) {
    sim::Rng rng(seed + 1000 * g);
    auto tree = sim::yuleTree(6, rng);
    sim::pickForegroundBranch(tree, rng);
    const auto pi = sim::randomCodonFrequencies(gc.numSense(), 5, rng);

    // Half the genes evolve under selection, half under the null.
    const bool underSelection = (g % 2 == 0);
    model::BranchSiteParams truth;
    truth.kappa = 2.0;
    truth.omega0 = 0.08;
    truth.omega2 = underSelection ? 8.0 : 1.0;
    truth.p0 = 0.35;
    truth.p1 = 0.35;
    const auto simOut = sim::evolveBranchSite(
        gc, tree, truth,
        underSelection ? model::Hypothesis::H1 : model::Hypothesis::H0,
        /*numCodons=*/120, pi, rng);
    const auto codons = seqio::encodeCodons(simOut.alignment, gc);

    core::BranchSiteAnalysis analysis(codons, tree, core::EngineKind::Slim,
                                      options);
    const auto test = analysis.run();
    totalSeconds += test.totalSeconds;

    const bool detected = test.lrt.significantAt(0.05);
    (underSelection ? positives : negatives)++;
    if (detected && underSelection) ++truePositives;
    if (detected && !underSelection) ++falsePositives;

    std::cout << std::left << std::setw(7) << g << std::setw(11)
              << (underSelection ? "selected" : "neutral") << std::setw(11)
              << std::setprecision(4) << test.lrt.statistic << std::setw(11)
              << test.lrt.pChi2 << std::setw(12) << test.h1.params.omega2
              << (detected ? "DETECTED" : "-") << '\n';
  }

  std::cout << "\nSummary over " << numGenes << " genes ("
            << std::setprecision(3) << totalSeconds << " s total):\n"
            << "  detected " << truePositives << "/" << positives
            << " genes under selection\n"
            << "  false alarms on " << falsePositives << "/" << negatives
            << " neutral genes (5% level)\n";
  return 0;
}
