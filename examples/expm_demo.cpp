// Matrix-exponential demo: walks through the 5-step SlimCodeML pipeline of
// Sec. III-A on a real 61x61 codon matrix, shows that the Eq. 9 and Eq. 10
// reconstructions and the Eq. 12 symmetric propagator agree, and times the
// two reconstruction paths (the paper's headline flop saving).
//
// Usage: expm_demo

#include <chrono>
#include <iomanip>
#include <iostream>

#include "expm/codon_eigen_system.hpp"
#include "expm/pade.hpp"
#include "linalg/blas2.hpp"
#include "model/codon_model.hpp"
#include "sim/rng.hpp"
#include "sim/evolver.hpp"

int main() {
  using namespace slim;
  using Clock = std::chrono::steady_clock;
  const auto& gc = bio::GeneticCode::universal();
  const int n = gc.numSense();

  sim::Rng rng(123);
  const auto pi = sim::randomCodonFrequencies(n, 5, rng);
  linalg::Matrix s(n, n);
  model::buildExchangeability(gc, /*kappa=*/2.0, /*omega=*/0.4, s);

  std::cout << "Step 1-2: symmetrize A = Pi^{1/2} S Pi^{1/2} and "
               "eigendecompose (" << n << "x" << n << ")\n";
  const auto t0 = Clock::now();
  const expm::CodonEigenSystem es(s, pi);
  std::cout << "  eigendecomposition: "
            << std::chrono::duration<double, std::milli>(Clock::now() - t0)
                   .count()
            << " ms; lambda_min = " << es.eigenvalues()[0]
            << ", lambda_max = " << es.eigenvalues()[n - 1] << "\n\n";

  const double t = 0.3;
  expm::ExpmWorkspace ws;
  linalg::Matrix pGemm(n, n), pSyrk(n, n), m(n, n);

  std::cout << "Steps 3-5 for t = " << t << ":\n";
  es.transitionMatrix(t, expm::ReconstructionPath::Gemm, linalg::Flavor::Opt,
                      ws, pGemm);
  es.transitionMatrix(t, expm::ReconstructionPath::Syrk, linalg::Flavor::Opt,
                      ws, pSyrk);
  std::cout << "  max |P_gemm - P_syrk|           = "
            << maxAbsDiff(pGemm, pSyrk) << '\n';

  linalg::Matrix q(n, n);
  model::buildRateMatrix(s, pi, q);
  for (std::size_t k = 0; k < q.size(); ++k) q.data()[k] *= t;
  std::cout << "  max |P_syrk - Pade oracle|      = "
            << maxAbsDiff(pSyrk, expm::expmPade(q)) << '\n';

  es.symmetricPropagator(t, linalg::Flavor::Opt, ws, m);
  linalg::Vector w(n, 1.0 / n), piw(n), viaM(n), viaP(n);
  for (int i = 0; i < n; ++i) piw[i] = pi[i] * w[i];
  linalg::symv(linalg::Flavor::Opt, m, piw.span(), viaM.span());
  linalg::gemv(linalg::Flavor::Opt, pSyrk, w.span(), viaP.span());
  std::cout << "  max |M(Pi w) - P w|  (Eq. 12)   = " << maxAbsDiff(viaM, viaP)
            << "\n\n";

  // Timing: Eq. 9 (2n^3 gemm) vs Eq. 10 (n^3 syrk), many branch lengths as
  // in one likelihood evaluation over a large tree.
  const int reps = 400;
  auto timePath = [&](expm::ReconstructionPath path) {
    const auto start = Clock::now();
    for (int r = 0; r < reps; ++r)
      es.transitionMatrix(0.01 + 0.001 * r, path, linalg::Flavor::Opt, ws,
                          pGemm);
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
  };
  const double msGemm = timePath(expm::ReconstructionPath::Gemm);
  const double msSyrk = timePath(expm::ReconstructionPath::Syrk);
  std::cout << "Reconstruction timing over " << reps << " branch lengths:\n"
            << "  Eq. 9  (gemm, ~2n^3 flops): " << std::setprecision(4)
            << msGemm << " ms\n"
            << "  Eq. 10 (syrk, ~n^3 flops):  " << msSyrk << " ms\n"
            << "  speedup: " << msGemm / msSyrk << "x\n";
  return 0;
}
