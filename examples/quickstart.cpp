// Quickstart: the complete CodeML branch-site workflow in ~40 lines of
// user code — parse an alignment and a tagged tree, fit H0 and H1 with both
// engines, run the likelihood-ratio test, print the report.
//
// Usage: quickstart            (uses the embedded primate-style example)

#include <iostream>

#include "core/analysis.hpp"
#include "core/report.hpp"

int main() {
  using namespace slim;

  // A small primate-style codon alignment (embedded for a self-contained
  // demo; see simulate_alignment for generating your own).
  const char* fasta =
      ">human\nATGGCTAAATTTCCCGGGACTTGCGGAGAT\n"
      ">chimp\nATGGCTAAATTCCCCGGGACTTGCGGAGAT\n"
      ">gorilla\nATGGCAAAATTTCCCGGAACTTGTGGAGAC\n"
      ">orangutan\nATGGCTAAGTTTCCAGGGACATGCGGTGAT\n"
      ">macaque\nATGGCGAAGTTTCCAGGAACATGTGGTGAC\n";

  // The '#1' tag marks the branch to test for positive selection: here the
  // ancestral branch of (human, chimp).
  const char* newick =
      "(((human:0.02,chimp:0.02) #1:0.015,gorilla:0.04):0.02,"
      "(orangutan:0.08,macaque:0.10):0.03);";

  const auto alignment = seqio::Alignment::readFastaString(fasta);
  const auto codons =
      seqio::encodeCodons(alignment, bio::GeneticCode::universal());
  const auto tree = tree::Tree::parseNewick(newick);

  core::FitOptions options;
  options.bfgs.maxIterations = 30;

  for (const auto engine :
       {core::EngineKind::CodemlBaseline, core::EngineKind::Slim}) {
    core::BranchSiteAnalysis analysis(codons, tree, engine, options);
    const auto test = analysis.run();
    core::writeTestReport(std::cout, test, engine);
    std::cout << "  total wall time: " << test.totalSeconds << " s\n\n";
  }
  return 0;
}
